//! The sharded mechanism-serving layer: many regions, one service.
//!
//! A city-scale deployment does not solve one giant D-VLP over the
//! whole map — it partitions the road network into region shards
//! ([`roadnet::Partition`]), poses an independent instance per shard,
//! and serves vehicles from whichever shard they drive in.
//! [`MechanismService`] is that serving layer, built on an always-on
//! pipelined core (the private `core` submodule):
//!
//! * **Sharding** — the graph is split into bands of near-equal node
//!   count; each shard owns its own [`VlpInstance`] (discretization,
//!   interval distances, cost matrix), its own routing table, its own
//!   bounded solve queue, and its own task queue.
//! * **Caller-path serving** — solved mechanisms are cached per
//!   `(shard, ε-bucket)` in a per-shard bounded LRU. A cache hit is
//!   served on the caller path — one short per-shard lock, one `Arc`
//!   refcount bump — and never enters a solve queue. Requested budgets
//!   are rounded *down* to the bucket grid, so the cached mechanism is
//!   always at least as private as requested.
//! * **Pipelined solving** — cache misses are enqueued onto the
//!   owning shard's bounded MPSC queue and solved by long-lived
//!   per-shard worker threads; while the optimum is in flight the
//!   request is served from the closed-form graph-Laplace baseline
//!   ([`VlpInstance::fallback`]) at the same canonical ε. Duplicate
//!   misses coalesce onto the in-flight solve.
//! * **Admission control** — when a solve cannot be admitted (queue
//!   full, open breaker, blackout, shutdown), the service sheds
//!   explicitly: it serves a stale or previously built mechanism if it
//!   has one, and otherwise returns [`Response::Rejected`] — bounded
//!   queues and honest backpressure instead of unbounded queueing.
//! * **Assignment** — obfuscated reports feed the same
//!   Hungarian-matching snapshot path the single-region [`Server`]
//!   uses, per shard.
//!
//! # Two frontends, one core
//!
//! [`MechanismService::obfuscate_batch`] is the synchronous batch API:
//! it classifies a batch, feeds the misses through the same worker
//! queues in *reply mode*, applies outcomes in deterministic key
//! order, and serves. Whether fresh solves are served optimally is a
//! **logical** deadline decision — [`ServiceConfig::solve_deadline`]
//! `ZERO` means "serve cold requests from the fallback", anything else
//! means "wait for this batch's solves" — so batch outputs are
//! bit-reproducible on arbitrarily slow machines (no wall-clock race).
//!
//! [`MechanismService::submit`] (and the cloneable, thread-safe
//! [`ServiceHandle`]) is the open-loop API vehicles hit individually:
//! it returns immediately with a served mechanism or an explicit
//! rejection, while solver workers warm the cache behind it.
//! [`MechanismService::tick`] advances the logical epoch (breaker
//! cooldowns, chaos schedule, metric flush); `bench_load` drives this
//! path at tens of thousands of requests per second.
//!
//! # The resilience ladder
//!
//! Failure is a first-class input: solver errors, pricing panics,
//! shard blackouts, cache purges, and deadline jitter can all be
//! scripted deterministically through [`vlp_obs::failpoint`]
//! ([`ServiceConfig::chaos`]), and the service climbs a fixed ladder
//! of degradations to survive them — each rung trades more *quality*,
//! never privacy (see `OPERATIONS.md` for the full runbook):
//!
//! 1. **Retry** — a failed or panicking solve is retried up to
//!    [`ResilienceConfig::max_attempts`] times with deterministic
//!    exponential backoff plus seeded jitter;
//! 2. **Circuit breaker** — each shard carries a
//!    closed → open → half-open breaker ([`BreakerState`]); after
//!    [`ResilienceConfig::breaker_threshold`] consecutive solve
//!    failures the shard's solves are shed entirely for
//!    [`ResilienceConfig::breaker_cooldown`] epochs, then probed with
//!    a single solve before re-closing;
//! 3. **Stale serving** — mechanisms displaced from the cache
//!    (LRU eviction, prior invalidation, evict storms) are demoted to
//!    a bounded *stale* store instead of dropped; when a solve fails
//!    or is shed, the stale mechanism is served with explicit
//!    staleness accounting ([`Served::Stale`]) — it was solved at the
//!    same canonical ε against the same interval graph, so it is
//!    exactly as private as a fresh optimum, merely suboptimal;
//! 4. **Fallback** — with nothing cached and nothing stale, the
//!    closed-form graph-Laplace fallback serves at the same ε, as
//!    before — except under backpressure, where a completely cold key
//!    is rejected rather than spending solve work the shard cannot
//!    afford.
//!
//! The invariant at every rung: **the served mechanism satisfies
//! full-spec ε-Geo-I at the canonical ε**. With no faults injected the
//! ladder is inert and the service behaves bit-identically to the
//! ladder-free implementation (`bench_chaos` gates this in CI).
//!
//! [`Server`]: crate::Server

use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use rand::RngExt;
use roadnet::{Location, Partition, RoadGraph};
use vlp_core::{CgOptions, LocalShard, Mechanism, Prior, QualityTier, VlpInstance};
use vlp_obs::failpoint::{site, FaultPlan};

use crate::server::assign_snapshot;
use crate::{SnapshotOutcome, Task, TaskId, WorkerId};

pub(crate) mod core;
mod ladder;
mod trace;

use core::{lock, CoreShared, EngineSnapshot, ServingCore};
use ladder::{CachedSolve, MechKey, MissOutcome};

pub use core::ShutdownReport;
pub use ladder::BreakerState;
pub use trace::{TraceBudgetConfig, VelocityEpsilon};

/// Telemetry metric names recorded by [`MechanismService`].
pub mod metrics {
    /// Counter: obfuscation requests received (batch and open-loop).
    pub const REQUESTS: &str = "service.requests";
    /// Timer: wall time of one `obfuscate_batch` call.
    pub const BATCH_TIME: &str = "service.batch";
    /// Counter: requests whose `(shard, ε-bucket)` mechanism was
    /// already cached when they arrived.
    pub const CACHE_HITS: &str = "service.cache_hits";
    /// Counter: requests that found no cached mechanism.
    pub const CACHE_MISSES: &str = "service.cache_misses";
    /// Counter: cache entries evicted to respect the capacity bound.
    pub const CACHE_EVICTIONS: &str = "service.cache_evictions";
    /// Counter: requests served from an optimally solved mechanism
    /// (cached, or solved by this batch and served optimally).
    pub const OPTIMAL_SERVED: &str = "service.optimal_served";
    /// Counter: requests served from the graph-Laplace fallback (cold
    /// key with the solve still in flight, or nothing better to shed
    /// to).
    pub const FALLBACK_SERVED: &str = "service.fallback_served";
    /// Timer: wall time of one per-shard mechanism solve on a solver
    /// worker.
    pub const SOLVE_TIME: &str = "service.solve";
    /// Counter: solves that exhausted their retries with an error (the
    /// request degrades; nothing is cached).
    pub const SOLVE_ERRORS: &str = "service.solve_errors";
    /// Counter: requests whose location could not be mapped into any
    /// shard (e.g. on a dropped cross-boundary edge); they are skipped.
    pub const OFF_PARTITION: &str = "service.off_partition";
    /// Counter: cache entries invalidated by a shard prior update.
    pub const PRIOR_INVALIDATIONS: &str = "service.prior_invalidations";
    /// Counter: solve attempts beyond the first (ladder rung 1). Each
    /// retry is preceded by deterministic exponential backoff.
    pub const RETRY_ATTEMPTS: &str = "service.retry.attempts";
    /// Counter: solve attempts that panicked (e.g. an injected pricing
    /// panic) and were contained by the worker's unwind boundary.
    pub const PANICS_CAUGHT: &str = "service.solve_panics";
    /// Counter: requests served from the stale store (ladder rung 3):
    /// a previously optimal mechanism for the same `(shard, ε-bucket)`
    /// that had been displaced from the cache.
    pub const STALE_SERVED: &str = "service.stale_served";
    /// Counter: cache entries demoted to the stale store (LRU
    /// eviction, prior invalidation, or an evict storm).
    pub const STALE_DEMOTIONS: &str = "service.stale_demotions";
    /// Counter: breaker transitions into `Open` (ladder rung 2).
    pub const BREAKER_OPENED: &str = "service.breaker.opened";
    /// Counter: breaker transitions `Open` → `HalfOpen` after the
    /// cooldown, admitting one probe solve.
    pub const BREAKER_HALF_OPEN: &str = "service.breaker.half_open";
    /// Counter: breaker transitions `HalfOpen` → `Closed` (a probe
    /// solve succeeded; the shard recovered).
    pub const BREAKER_RECLOSED: &str = "service.breaker.reclosed";
    /// Counter: cache-miss solves shed without an attempt because the
    /// shard's breaker was open (or its half-open probe slot was
    /// taken).
    pub const BREAKER_SHED: &str = "service.breaker.shed";
    /// Counter: solve jobs admitted onto a shard's bounded queue.
    pub const QUEUE_ENQUEUED: &str = "service.queue.enqueued";
    /// Counter: cache misses that coalesced onto an in-flight solve
    /// for the same `(shard, ε-bucket)` instead of enqueueing again.
    pub const QUEUE_COALESCED: &str = "service.queue.coalesced";
    /// Counter: solve admissions refused because the shard's queue was
    /// full (explicit backpressure; the request is shed).
    pub const QUEUE_FULL: &str = "service.queue.full";
    /// Counter: queued solve jobs completed during a graceful
    /// shutdown's drain.
    pub const QUEUE_DRAINED: &str = "service.queue.drained";
    /// Counter: open-loop requests rejected outright — shed with
    /// nothing cached, stale, or previously built to degrade to.
    pub const SHED_REJECTED: &str = "service.shed.rejected";
    /// Counter: open-loop requests shed but served degraded (stale or
    /// previously built fallback).
    pub const SHED_DEGRADED: &str = "service.shed.degraded";
    /// Counter: cumulative LP support size `k` over completed solves.
    /// Divided by the solve count this is the mean support — `K` in
    /// full-shard mode, the (much smaller) neighborhood size in
    /// locally-relevant mode.
    pub const SOLVE_SUPPORT: &str = "service.solve.support";
    /// Counter: cumulative LP variable count (`k²`) over completed
    /// solves — the measurable form of the `O(K²) → O(k²)` claim.
    pub const SOLVE_LP_VARS: &str = "service.solve.lp_vars";
    /// Counter: cumulative instantiated Geo-I inequality rows over
    /// completed solves.
    pub const SOLVE_LP_ROWS: &str = "service.solve.lp_rows";
    /// Counter: ρ-net neighborhoods planned across all shards at boot
    /// (locally-relevant mode only).
    pub const LOCAL_NEIGHBORHOODS: &str = "service.local.neighborhoods";
    /// Counter: solves completed by the locally-relevant engine.
    pub const LOCAL_SOLVES: &str = "service.local.solves";
    /// Counter: requests served at the exact tier (the full
    /// column-generation optimum — `Exact` in
    /// [`vlp_core::QualityTier`]).
    pub const TIER_EXACT_SERVED: &str = "service.tier.exact.served";
    /// Counter: requests served at the interval-clustering tier
    /// (`Clustered`).
    pub const TIER_CLUSTERED_SERVED: &str = "service.tier.clustered.served";
    /// Counter: requests served at the spanner tier (`Spanner`).
    pub const TIER_SPANNER_SERVED: &str = "service.tier.spanner.served";
    /// Counter: requests served at the graph-Laplace tier (`Laplace` —
    /// every fallback serve, whatever rung of the resilience ladder
    /// produced it).
    pub const TIER_LAPLACE_SERVED: &str = "service.tier.laplace.served";
    /// Counter: served reports charged against a vehicle's trace
    /// budget ledger (accounting enabled only).
    pub const TRACE_CHARGES: &str = "service.trace.charges";
    /// Counter: charged reports served at a throttled ε — the ledger
    /// was past the throttle knee, so the grant was shrunk below what
    /// the raw request would have bucketed to.
    pub const TRACE_THROTTLED: &str = "service.trace.throttled";
    /// Counter: reports refused with
    /// [`Response::BudgetExhausted`](super::Response::BudgetExhausted)
    /// — the throttled grant fell below one ε-bucket width.
    pub const TRACE_REFUSALS: &str = "service.trace.refusals";
    /// Counter: vehicles whose remaining trace budget dropped below
    /// one ε-bucket width (terminal — every later report refuses);
    /// counted once per vehicle.
    pub const TRACE_EXHAUSTED: &str = "service.trace.exhausted";
    /// Series: mean ledger fill fraction across vehicles with any
    /// spend, sampled once per epoch while accounting is enabled.
    pub const TRACE_FILL: &str = "service.trace.fill";

    /// The per-tier served counter for `tier` — one of the four
    /// `service.tier.<tier>.served` names above.
    pub fn tier_served_metric(tier: vlp_core::QualityTier) -> &'static str {
        use vlp_core::QualityTier;
        match tier {
            QualityTier::Exact => TIER_EXACT_SERVED,
            QualityTier::Clustered => TIER_CLUSTERED_SERVED,
            QualityTier::Spanner => TIER_SPANNER_SERVED,
            QualityTier::Laplace => TIER_LAPLACE_SERVED,
        }
    }

    /// Records one completed solve's LP shape into the cumulative
    /// counters (cumulative sums are commutative, so the totals are
    /// deterministic whatever order worker threads publish in).
    pub(crate) fn record_solve_stats(
        obs: &vlp_obs::Registry,
        stats: &super::ladder::SolveStats,
        local: bool,
    ) {
        obs.incr(SOLVE_SUPPORT, stats.support);
        obs.incr(SOLVE_LP_VARS, stats.lp_vars);
        obs.incr(SOLVE_LP_ROWS, stats.lp_rows);
        if local {
            obs.incr(LOCAL_SOLVES, 1);
        }
    }

    /// Series name recording shard `s`'s breaker state once per epoch:
    /// `0` closed, `1` half-open, `2` open. Part of the service's
    /// health snapshot in the `vlp-obs` schema.
    pub fn breaker_state_series(s: usize) -> String {
        format!("service.breaker.state.{s}")
    }

    /// Series name sampling shard `s`'s in-flight solve count (queued
    /// plus running) once per epoch.
    pub fn queue_depth_series(s: usize) -> String {
        format!("service.queue.depth.{s}")
    }
}

/// Configuration for [`MechanismService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of region shards to partition the map into.
    pub n_shards: usize,
    /// Interval length δ for each shard's discretization, km.
    pub delta: f64,
    /// Geo-I protection radius, km.
    pub radius: f64,
    /// Column-generation options for cache-miss solves.
    pub cg: CgOptions,
    /// Width of the ε cache buckets (per km). A requested ε is rounded
    /// *down* to a multiple of this width, so the served mechanism is
    /// never less private than asked for. Requests below one bucket
    /// width are rejected.
    pub epsilon_bucket: f64,
    /// Maximum number of ε-bucket mechanisms kept in *each shard's*
    /// LRU cache.
    pub cache_capacity: usize,
    /// Bound on each shard's solve queue. A miss that finds the queue
    /// full is shed (served degraded, or rejected when cold) instead
    /// of blocking — explicit backpressure.
    pub queue_capacity: usize,
    /// Whether `obfuscate_batch` serves its own fresh solves
    /// optimally. This is a *logical* deadline: `ZERO` means "never
    /// wait" — every cold request is served from the fallback (the
    /// solves still complete and populate the cache before the call
    /// returns); any nonzero value means the batch waits for its
    /// admitted solves and serves them optimally. No wall clock is
    /// raced, so batch outputs are identical on fast and slow machines;
    /// injected deadline jitter flips a batch to "never wait".
    pub solve_deadline: Duration,
    /// Long-lived solver worker threads *per shard*.
    pub solver_threads: usize,
    /// Retry, breaker, and stale-store tuning for the resilience
    /// ladder (see the [module docs](self)).
    pub resilience: ResilienceConfig,
    /// Opt-in locally-relevant solve mode. `None` (the default) keeps
    /// the classic full-shard engine: one `O(K²)` LP per
    /// `(shard, ε-bucket)`. `Some` restricts every solve to the ρ-net
    /// neighborhood covering the reporting vehicle — an `O(k²)` LP over
    /// the `k ≪ K` intervals within road-network reach — making solve
    /// cost independent of map size (see `ARCHITECTURE.md`,
    /// "Locally-relevant solving"). With [`LocalConfig::rho`] `= ∞` the
    /// mode degenerates to a single whole-shard neighborhood and is
    /// bit-identical to the full engine.
    pub local: Option<LocalConfig>,
    /// Deterministic fault-injection schedule. The default (empty)
    /// plan injects nothing and leaves every ladder rung inert; chaos
    /// harnesses like `bench_chaos` script solver faults, shard
    /// blackouts, evict storms, and deadline jitter through it.
    pub chaos: FaultPlan,
    /// Quality-tier policy: the LP-reduction knobs of the intermediate
    /// tiers ([`vlp_core::tiers`]) and the deadline floors that decide
    /// which rung of the quality ladder a batch's cold solves run at.
    /// The default picks `Exact` for any nonzero deadline and the
    /// graph-Laplace fallback for a zero deadline — exactly the
    /// pre-tier behavior.
    pub tiers: TierPolicy,
    /// Opt-in per-vehicle trace-budget accounting for continuous
    /// serving, on the open-loop [`MechanismService::submit`] path.
    /// `None` (the default) keeps the classic unaccounted service —
    /// bit-identical to the pre-accountant behavior. `Some` charges
    /// every served report's canonical ε against the vehicle's
    /// ledger, throttles grants as the ledger fills, and refuses with
    /// [`Response::BudgetExhausted`] once a grant would fall below one
    /// ε-bucket width (see [`trace`](TraceBudgetConfig) for the
    /// composition argument). The batch frontend is not accounted —
    /// batches model one sporadic report per vehicle.
    pub budget: Option<TraceBudgetConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            n_shards: 2,
            delta: 0.2,
            radius: f64::INFINITY,
            cg: CgOptions::default(),
            epsilon_bucket: 0.25,
            cache_capacity: 64,
            queue_capacity: 256,
            solve_deadline: Duration::from_millis(200),
            solver_threads: 2,
            resilience: ResilienceConfig::default(),
            local: None,
            chaos: FaultPlan::default(),
            tiers: TierPolicy::default(),
            budget: None,
        }
    }
}

/// The quality ladder's tier-selection policy
/// ([`ServiceConfig::tiers`]): which [`QualityTier`] a cold solve runs
/// at, as a function of the remaining *logical* deadline, plus the
/// LP-reduction knobs of the two intermediate tiers (see `DESIGN.md`,
/// "Quality tiers"). Every tier's mechanism satisfies full-spec
/// ε-Geo-I at the canonical ε — the ladder trades quality (ETDD), not
/// privacy.
#[derive(Debug, Clone, Copy)]
pub struct TierPolicy {
    /// Clustering width (km of `d_min` distance) of the `Clustered`
    /// tier: intervals within this distance of a cluster center share
    /// the center's mechanism row. `0` degenerates to the exact
    /// (unclustered) LP.
    pub cluster_width: f64,
    /// Stretch factor `t ≥ 1` of the `Spanner` tier's greedy t-spanner.
    /// The spanner constraints are enforced at `ε/t`, so chaining
    /// along spanner paths never loosens ε; larger stretch keeps fewer
    /// constraints but over-tightens more.
    pub spanner_stretch: f64,
    /// Minimum logical deadline at which a cold solve runs `Exact`.
    pub exact_floor: Duration,
    /// Minimum logical deadline for the `Clustered` tier (checked when
    /// the deadline is below [`TierPolicy::exact_floor`]).
    pub clustered_floor: Duration,
    /// Minimum logical deadline for the `Spanner` tier (checked when
    /// the deadline is below [`TierPolicy::clustered_floor`]).
    pub spanner_floor: Duration,
}

impl Default for TierPolicy {
    fn default() -> Self {
        Self {
            cluster_width: 0.3,
            spanner_stretch: 2.5,
            exact_floor: Duration::ZERO,
            clustered_floor: Duration::MAX,
            spanner_floor: Duration::MAX,
        }
    }
}

impl TierPolicy {
    /// The best tier whose deadline floor fits `deadline`. A zero
    /// deadline (the "never wait" contract) is always `Laplace`;
    /// otherwise the ladder is scanned best-first, falling through to
    /// `Laplace` when even the spanner floor does not fit. The
    /// deadline is *logical*, exactly like
    /// [`ServiceConfig::solve_deadline`] — no wall clock is raced.
    pub fn tier_for(&self, deadline: Duration) -> QualityTier {
        if deadline.is_zero() {
            QualityTier::Laplace
        } else if self.exact_floor <= deadline {
            QualityTier::Exact
        } else if self.clustered_floor <= deadline {
            QualityTier::Clustered
        } else if self.spanner_floor <= deadline {
            QualityTier::Spanner
        } else {
            QualityTier::Laplace
        }
    }

    /// The tier background (cache-warming) solves run at: the best
    /// tier with no deadline pressure. Never `Laplace` — the exact
    /// floor always fits an unbounded deadline, so warming always
    /// buys a real LP solve.
    pub fn background_tier(&self) -> QualityTier {
        self.tier_for(Duration::MAX)
    }
}

/// Tuning for the locally-relevant solve mode
/// ([`ServiceConfig::local`]).
#[derive(Debug, Clone, Copy)]
pub struct LocalConfig {
    /// Assignment radius ρ of the ρ-net neighborhood plan, km of
    /// road-network distance. Every interval is assigned to a net
    /// center within ρ; the neighborhood's support is the center's
    /// `ρ + radius` ball, so each served vehicle's whole protection
    /// ball is inside the support (the locality theorem). Smaller ρ
    /// means smaller LPs but more neighborhoods (more cache keys,
    /// more cold-start fallback serving); `∞` means one whole-shard
    /// neighborhood, bit-identical to the full engine.
    ///
    /// A finite ρ requires a finite [`ServiceConfig::radius`] —
    /// otherwise every support would be the whole shard anyway.
    pub rho: f64,
}

/// Tuning for the resilience ladder: bounded retry (rung 1), the
/// per-shard circuit breaker (rung 2), and the stale store (rung 3).
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Total solve attempts per queued job, including the first (≥ 1).
    /// Attempts beyond the first are counted as
    /// [`metrics::RETRY_ATTEMPTS`].
    pub max_attempts: u32,
    /// Base backoff before the first retry; attempt `n` waits
    /// `min(backoff_base · 2ⁿ⁻¹, backoff_cap)` plus deterministic
    /// jitter in `[0, backoff_base)` seeded from the chaos plan.
    pub backoff_base: Duration,
    /// Upper bound on the exponential backoff term.
    pub backoff_cap: Duration,
    /// Consecutive solve failures (retries exhausted) that trip a
    /// shard's breaker from `Closed` to `Open`.
    pub breaker_threshold: u32,
    /// Epochs (batches) a breaker stays `Open` before moving to
    /// `HalfOpen` and admitting a single probe solve.
    pub breaker_cooldown: u64,
    /// Maximum ε-bucket entries kept in *each shard's* stale store;
    /// the oldest demotion is dropped first.
    pub stale_capacity: usize,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base: Duration::from_micros(500),
            backoff_cap: Duration::from_millis(10),
            breaker_threshold: 3,
            breaker_cooldown: 2,
            stale_capacity: 64,
        }
    }
}

/// Where a served mechanism came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// The optimally solved mechanism for the request's
    /// `(shard, ε-bucket)`; `cached` is true when it was already in
    /// the cache before this request (or batch) arrived.
    Optimal {
        /// Whether the mechanism was a cache hit (vs. solved within
        /// this batch and served under the logical deadline).
        cached: bool,
    },
    /// A previously solved optimal mechanism for the same
    /// `(shard, ε-bucket)`, served from the stale store because the
    /// fresh solve failed or was shed. Same canonical ε and interval
    /// graph as a fresh optimum — identical privacy, possibly
    /// suboptimal quality (e.g. solved under an outdated prior).
    Stale {
        /// Epochs (batches) elapsed since the mechanism was demoted
        /// from the primary cache.
        age_batches: u64,
    },
    /// The graph-Laplace fallback: the optimum was not available in
    /// time (cold key, solve in flight, or failed with nothing stale),
    /// so quality was sacrificed to keep ε intact.
    Fallback,
}

/// One served obfuscation: the reported (obfuscated) position plus
/// provenance. Locations and intervals are in the shard's local frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obfuscation {
    /// The requesting worker.
    pub worker: WorkerId,
    /// The shard the worker's true location fell in.
    pub shard: usize,
    /// The reported interval, indexed in the shard's discretization.
    pub interval: usize,
    /// The reported location on the shard's local graph.
    pub location: Location,
    /// The canonical (bucketed) ε the served mechanism enforces —
    /// at most the requested ε.
    pub epsilon: f64,
    /// The quality tier of the served mechanism: `Exact` for the full
    /// CG optimum, `Clustered`/`Spanner` for the intermediate tiers,
    /// `Laplace` for every fallback serve. All tiers satisfy full-spec
    /// ε-Geo-I at [`Obfuscation::epsilon`].
    pub tier: QualityTier,
    /// Which mechanism served the request.
    pub served: Served,
}

/// The outcome of one open-loop submission ([`MechanismService::submit`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Response {
    /// The request was served an obfuscation (possibly degraded — see
    /// [`Obfuscation::served`]).
    Served(Obfuscation),
    /// Admission control rejected the request: its `(shard, ε-bucket)`
    /// was shed (queue full, open breaker, blackout, or shutdown) and
    /// the shard had nothing cached, stale, or previously built to
    /// degrade to. Explicit backpressure — the caller retries later or
    /// reports at a coarser ε.
    Rejected {
        /// The requesting worker.
        worker: WorkerId,
        /// The shard the request routed to.
        shard: usize,
        /// The canonical ε the request would have been served at.
        epsilon: f64,
    },
    /// The location mapped into no shard (dropped cross-boundary
    /// edge); nothing was served.
    OffPartition {
        /// The requesting worker.
        worker: WorkerId,
    },
    /// The vehicle's trace-budget ledger could not afford another
    /// report ([`ServiceConfig::budget`]): the throttled grant fell
    /// below one ε-bucket width, so serving *anything* would either
    /// overspend the trace budget or violate the round-down contract.
    /// Nothing was served and nothing was charged. When `remaining`
    /// is itself below one bucket width the exhaustion is terminal —
    /// every later report from this vehicle refuses too.
    BudgetExhausted {
        /// The requesting worker.
        worker: WorkerId,
        /// The shard the request routed to.
        shard: usize,
        /// The unspent remainder of the vehicle's trace budget.
        remaining: f64,
    },
}

impl Response {
    /// The served obfuscation, if the request was served.
    pub fn served(&self) -> Option<&Obfuscation> {
        match self {
            Response::Served(o) => Some(o),
            _ => None,
        }
    }
}

/// One shard's slice of the service health snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// The shard index.
    pub shard: usize,
    /// The shard's breaker state.
    pub breaker: BreakerState,
    /// Consecutive solve failures in the current run (resets on any
    /// success).
    pub consecutive_failures: u32,
    /// The epoch at which the breaker last opened, when not `Closed`.
    pub opened_at_batch: Option<u64>,
    /// Solved mechanisms currently cached for this shard.
    pub cached: usize,
    /// Mechanisms held in the stale store for this shard.
    pub stale: usize,
    /// Solve jobs queued or running for this shard.
    pub inflight: usize,
}

/// A readiness/health snapshot of the service, for operators and
/// harnesses. The same information is exported per epoch through the
/// `vlp-obs` registry (`service.breaker.state.<s>` and
/// `service.queue.depth.<s>` series plus the `service.*`/`chaos.*`
/// counters) — see `OPERATIONS.md`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceHealth {
    /// Epochs (batches) served so far.
    pub batches: u64,
    /// Whether every shard's breaker is closed (full capacity; no
    /// degraded serving beyond warm-up fallbacks).
    pub ready: bool,
    /// Per-shard detail, in shard order.
    pub shards: Vec<ShardHealth>,
}

/// A cloneable, thread-safe handle for driving a [`MechanismService`]'s
/// open-loop path from other threads: `submit` requests, `tick` the
/// logical clock, `quiesce` on in-flight solves, `flush_metrics`. The
/// handle stays valid after the service shuts down — submissions then
/// serve only from cached/stale/fallback state and reject cold keys.
#[derive(Debug, Clone)]
pub struct ServiceHandle {
    shared: Arc<CoreShared>,
}

impl ServiceHandle {
    /// Serves one request on the caller path — see
    /// [`MechanismService::submit`].
    pub fn submit<R: RngExt + ?Sized>(
        &self,
        worker: WorkerId,
        loc: Location,
        epsilon: f64,
        rng: &mut R,
    ) -> Response {
        self.shared.submit(worker, loc, epsilon, rng)
    }

    /// Advances the logical epoch — see [`MechanismService::tick`].
    pub fn tick(&self) -> u64 {
        self.shared.tick()
    }

    /// Blocks until no solve job is queued or running.
    pub fn quiesce(&self) {
        self.shared.quiesce()
    }

    /// Publishes accumulated per-shard counters into the `vlp-obs`
    /// registry without advancing the epoch.
    pub fn flush_metrics(&self) {
        self.shared.flush_metrics()
    }

    /// The current logical epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Relaxed)
    }

    /// Cumulative ε charged to `worker`'s trace budget — see
    /// [`MechanismService::budget_spent`].
    pub fn budget_spent(&self, worker: WorkerId) -> Option<f64> {
        self.shared.budget_spent(worker)
    }

    /// The whole trace-budget ledger — see
    /// [`MechanismService::budget_ledger`].
    pub fn budget_ledger(&self) -> Vec<(WorkerId, f64)> {
        self.shared.budget_ledger()
    }
}

/// Per-shard task queue state (assignment side; not touched by the
/// serving core).
#[derive(Debug, Default)]
struct TaskShard {
    tasks: Vec<Task>,
    pending: Vec<TaskId>,
}

/// The concurrent, sharded mechanism-serving layer. See the
/// [module docs](self) for the serving model and the resilience
/// ladder.
#[derive(Debug)]
pub struct MechanismService {
    core: ServingCore,
    tasks: Vec<TaskShard>,
}

impl MechanismService {
    /// Boots a service over `graph`: partitions it into
    /// `config.n_shards` region shards, prepares one uniform-prior
    /// [`VlpInstance`] per shard, and starts
    /// [`ServiceConfig::solver_threads`] long-lived solver workers per
    /// shard. No mechanism is solved yet — the cache starts cold and
    /// fills on demand.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero shards, bucket
    /// width, capacities, or threads; non-positive δ) or the graph is
    /// too small to partition into `n_shards` bands.
    pub fn new(graph: RoadGraph, config: ServiceConfig) -> Self {
        let core = ServingCore::new(graph, config);
        let tasks = (0..core.shared.shards.len())
            .map(|_| TaskShard::default())
            .collect();
        Self { core, tasks }
    }

    /// The region partition the service shards over.
    pub fn partition(&self) -> &Partition {
        &self.core.shared.partition
    }

    /// Number of region shards.
    pub fn shard_count(&self) -> usize {
        self.core.shared.shards.len()
    }

    /// A snapshot of shard `s`'s VLP instance (cheap: one refcount
    /// bump; prior updates swap the instance copy-on-write).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range, or if the service runs in
    /// locally-relevant mode — that mode never materializes an `O(K²)`
    /// instance; use [`MechanismService::local_shard`] instead.
    pub fn shard_instance(&self, s: usize) -> Arc<VlpInstance> {
        self.core.shared.shards[s].instance()
    }

    /// A snapshot of shard `s`'s locally-relevant engine, when
    /// [`ServiceConfig::local`] is set — the neighborhood plan,
    /// per-neighborhood supports, and audit specs
    /// ([`LocalShard::audit_spec`]) live here. `None` in full-shard
    /// mode.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn local_shard(&self, s: usize) -> Option<Arc<LocalShard>> {
        self.core.shared.shards[s].local_shard()
    }

    /// Number of solved mechanisms currently cached across shards.
    pub fn cached_mechanisms(&self) -> usize {
        self.core
            .shared
            .shards
            .iter()
            .map(|shard| lock(&shard.table).cache.len())
            .sum()
    }

    /// The quality loss (ETDD) of the cached optimal mechanism for
    /// shard `s` at `epsilon`'s bucket, if one is cached. Does not
    /// touch LRU recency. In locally-relevant mode this addresses
    /// neighborhood `0`'s entry; use [`MechanismService::live_mechanisms_keyed`]
    /// for the full keyed view.
    pub fn cached_quality_loss(&self, s: usize, epsilon: f64) -> Option<f64> {
        let (bucket, _) = self.core.shared.bucket(epsilon);
        lock(&self.core.shared.shards[s].table)
            .cache
            .map
            .get(&MechKey::full(bucket))
            .map(|entry| entry.0.quality_loss)
    }

    /// The cached optimal mechanism for shard `s` at `epsilon`'s
    /// bucket, if one is cached. Does not touch LRU recency — use for
    /// auditing (e.g. [`vlp_core::privacy::verify`]), not serving. In
    /// locally-relevant mode this addresses neighborhood `0`'s entry.
    pub fn cached_mechanism(&self, s: usize, epsilon: f64) -> Option<Arc<Mechanism>> {
        let (bucket, _) = self.core.shared.bucket(epsilon);
        lock(&self.core.shared.shards[s].table)
            .cache
            .map
            .get(&MechKey::full(bucket))
            .map(|entry| Arc::clone(&entry.0.mechanism))
    }

    /// The graph-Laplace fallback mechanism for shard `s` at
    /// `epsilon`'s bucket, if one has been built (fallbacks are built
    /// lazily, on the first cold serve of their key). In
    /// locally-relevant mode this addresses neighborhood `0`'s entry.
    pub fn fallback_mechanism(&self, s: usize, epsilon: f64) -> Option<Arc<Mechanism>> {
        let (bucket, _) = self.core.shared.bucket(epsilon);
        lock(&self.core.shared.shards[s].table)
            .fallbacks
            .get(&MechKey::full(bucket).at_tier(QualityTier::Laplace))
            .map(Arc::clone)
    }

    /// Number of mechanisms currently held in the stale stores.
    pub fn stale_mechanisms(&self) -> usize {
        self.core
            .shared
            .shards
            .iter()
            .map(|shard| lock(&shard.table).stale.len())
            .sum()
    }

    /// The stale mechanism for shard `s` at `epsilon`'s bucket, if one
    /// is held, with the epoch it was demoted at. In locally-relevant
    /// mode this addresses neighborhood `0`'s entry.
    pub fn stale_mechanism(&self, s: usize, epsilon: f64) -> Option<(Arc<Mechanism>, u64)> {
        let (bucket, _) = self.core.shared.bucket(epsilon);
        lock(&self.core.shared.shards[s].table)
            .stale
            .get(&MechKey::full(bucket))
            .map(|(entry, demoted)| (Arc::clone(&entry.mechanism), *demoted))
    }

    /// Epochs (batches) served so far.
    pub fn batches_served(&self) -> u64 {
        self.core.shared.epoch.load(Ordering::Relaxed)
    }

    /// The breaker state of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn breaker_state(&self, s: usize) -> BreakerState {
        lock(&self.core.shared.shards[s].table).breaker.state
    }

    /// A point-in-time health/readiness snapshot: per-shard breaker
    /// states, failure runs, cache/stale occupancy, and queue depth.
    /// The same data lands in the `vlp-obs` registry every epoch.
    pub fn health(&self) -> ServiceHealth {
        let shards = self
            .core
            .shared
            .shards
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                let t = lock(&shard.table);
                ShardHealth {
                    shard: s,
                    breaker: t.breaker.state,
                    consecutive_failures: t.breaker.consecutive_failures,
                    opened_at_batch: (t.breaker.state != BreakerState::Closed)
                        .then_some(t.breaker.opened_at),
                    cached: t.cache.len(),
                    stale: t.stale.len(),
                    inflight: t.inflight.len(),
                }
            })
            .collect::<Vec<_>>();
        ServiceHealth {
            batches: self.batches_served(),
            ready: shards.iter().all(|h| h.breaker == BreakerState::Closed),
            shards,
        }
    }

    /// Every mechanism the service currently holds — cached optima,
    /// stale entries, and built fallbacks — as
    /// `(shard, canonical ε, mechanism)`, in a deterministic order.
    /// Chaos harnesses audit each against full-spec
    /// [`vlp_core::privacy::verify`]: everything servable must satisfy
    /// ε-Geo-I at its canonical ε, whatever rung it sits on. In
    /// locally-relevant mode use
    /// [`MechanismService::live_mechanisms_keyed`], which also carries
    /// the neighborhood id the audit spec is built from.
    pub fn live_mechanisms(&self) -> Vec<(usize, f64, Arc<Mechanism>)> {
        self.live_mechanisms_keyed()
            .into_iter()
            .map(|(s, _, eps, m)| (s, eps, m))
            .collect()
    }

    /// [`MechanismService::live_mechanisms`] with the full cache key:
    /// `(shard, neighborhood, canonical ε, mechanism)`, sorted by
    /// `(shard, neighborhood, ε)`. In full-shard mode every
    /// neighborhood id is `0`; in locally-relevant mode the
    /// neighborhood id selects the restricted audit spec
    /// ([`LocalShard::audit_spec`]) the mechanism must verify against.
    pub fn live_mechanisms_keyed(&self) -> Vec<(usize, u32, f64, Arc<Mechanism>)> {
        let width = self.core.shared.config.epsilon_bucket;
        let mut out: Vec<(usize, MechKey, Arc<Mechanism>)> = Vec::new();
        for (s, shard) in self.core.shared.shards.iter().enumerate() {
            let t = lock(&shard.table);
            out.extend(
                t.cache
                    .map
                    .iter()
                    .map(|(&k, (entry, _))| (s, k, Arc::clone(&entry.mechanism))),
            );
            out.extend(
                t.stale
                    .iter()
                    .map(|(&k, (entry, _))| (s, k, Arc::clone(&entry.mechanism))),
            );
            out.extend(t.fallbacks.iter().map(|(&k, m)| (s, k, Arc::clone(m))));
        }
        out.sort_by_key(|&(s, k, _)| (s, k));
        out.into_iter()
            .map(|(s, k, m)| (s, k.nb, k.bucket as f64 * width, m))
            .collect()
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.core.shared.config
    }

    /// The canonical ε a request for `epsilon` is served at: `epsilon`
    /// rounded down to the bucket grid. Always `≤ epsilon`, so the
    /// served mechanism is at least as private as requested.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is below one bucket width (rounding down
    /// would hit ε = 0, which no mechanism can satisfy usefully).
    pub fn canonical_epsilon(&self, epsilon: f64) -> f64 {
        self.core.shared.bucket(epsilon).1
    }

    /// Cumulative ε charged to `worker`'s trace budget so far (linear
    /// composition over its served reports). `None` when accounting is
    /// disabled ([`ServiceConfig::budget`] is `None`); `Some(0.0)` for
    /// a vehicle that has not been served an accounted report yet.
    pub fn budget_spent(&self, worker: WorkerId) -> Option<f64> {
        self.core.shared.budget_spent(worker)
    }

    /// The whole trace-budget ledger as a sorted
    /// `(vehicle, cumulative ε)` list — empty when accounting is
    /// disabled. The audit surface `bench_traces` checks the
    /// cumulative-ε-≤-budget gate against.
    pub fn budget_ledger(&self) -> Vec<(WorkerId, f64)> {
        self.core.shared.budget_ledger()
    }

    /// Updates shard `s`'s worker prior (copy-on-write: in-flight
    /// solves keep the old instance and are demoted to stale when they
    /// land) and invalidates its cached mechanisms. Fallbacks are
    /// prior-free and stay.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range or the prior's dimension does not
    /// match the shard's interval count.
    pub fn set_worker_prior(&mut self, s: usize, f_p: Prior) {
        self.core.shared.set_worker_prior(s, f_p);
    }

    /// Serves one open-loop request on the caller path: a cache hit
    /// returns the optimal mechanism without touching any queue; a
    /// miss enqueues a solve on the owning shard's bounded queue
    /// (coalescing duplicates) and serves the graph-Laplace fallback
    /// while it is in flight; a miss that cannot be admitted (queue
    /// full, open breaker, blackout, shutdown) is shed — served stale
    /// or from a previously built fallback when possible, otherwise
    /// [`Response::Rejected`]. Never blocks on solve work.
    ///
    /// Sampling uses the caller's `rng`; each submitting thread owns
    /// its own rng (see [`ServiceHandle`]).
    pub fn submit<R: RngExt + ?Sized>(
        &self,
        worker: WorkerId,
        loc: Location,
        epsilon: f64,
        rng: &mut R,
    ) -> Response {
        self.core.shared.submit(worker, loc, epsilon, rng)
    }

    /// A cloneable, thread-safe handle onto the serving core for
    /// open-loop drivers (load generators, per-vehicle threads).
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            shared: Arc::clone(&self.core.shared),
        }
    }

    /// Advances the logical epoch: evaluates epoch-scoped chaos (evict
    /// storms, shard blackouts), ticks breaker cooldowns, samples the
    /// per-shard breaker/queue-depth series, and flushes per-shard
    /// counters to `vlp-obs`. Open-loop drivers call this once per
    /// reporting round. Returns the new epoch.
    pub fn tick(&self) -> u64 {
        self.core.shared.tick()
    }

    /// Blocks until no solve job is queued or running — the open-loop
    /// analogue of a batch barrier, used to warm caches and to make
    /// harness runs deterministic.
    pub fn quiesce(&self) {
        self.core.shared.quiesce()
    }

    /// Publishes accumulated per-shard counters into the `vlp-obs`
    /// registry without advancing the epoch.
    pub fn flush_metrics(&self) {
        self.core.shared.flush_metrics()
    }

    /// Graceful shutdown: stops admitting new solves, lets the workers
    /// drain every queued job (all of them complete and publish), and
    /// joins them in shard order. Idempotent; also runs on drop.
    /// Open-loop submission remains possible afterwards — hits, stale,
    /// and prebuilt fallbacks still serve; cold keys are rejected.
    pub fn shutdown(&mut self) -> ShutdownReport {
        self.core.shutdown()
    }

    /// Serves a batch of obfuscation requests `(worker, true location,
    /// requested ε)` — the synchronous batch API vehicles hit each
    /// reporting round.
    ///
    /// Cache hits are served directly. Distinct missing
    /// `(shard, ε-bucket)` keys are fed through the per-shard solver
    /// workers in reply mode; outcomes are applied in deterministic
    /// key order. Whether this batch's own solves are served optimally
    /// is the *logical* [`ServiceConfig::solve_deadline`] decision —
    /// `ZERO` serves cold requests from the graph-Laplace fallback at
    /// the same canonical ε (solves still land in the cache before the
    /// call returns), nonzero waits and serves them optimally.
    /// Requests whose location lies on no shard are skipped and
    /// counted as `service.off_partition`.
    ///
    /// Under an injected fault schedule ([`ServiceConfig::chaos`]) the
    /// resilience ladder engages exactly as on the open-loop path:
    /// failed solves retry with backoff, shards with open breakers
    /// shed, and keys whose solve failed (or was shed) are served from
    /// the stale store when possible ([`Served::Stale`]) — otherwise
    /// from the fallback. A cold key that is *not* failed — merely not
    /// waited for — always serves the fallback, exactly as in the
    /// fault-free service.
    ///
    /// Sampling uses the caller's `rng`, so runs are reproducible.
    pub fn obfuscate_batch<R: RngExt + ?Sized>(
        &mut self,
        requests: &[(WorkerId, Location, f64)],
        rng: &mut R,
    ) -> Vec<Obfuscation> {
        let deadline = self.core.shared.config.solve_deadline;
        self.obfuscate_batch_with_deadline(requests, deadline, rng)
    }

    /// [`MechanismService::obfuscate_batch`] with an explicit logical
    /// deadline for this batch, overriding
    /// [`ServiceConfig::solve_deadline`]. The deadline picks the rung
    /// of the *quality ladder* through [`TierPolicy::tier_for`]: cold
    /// keys are solved at the best tier whose deadline floor fits, and
    /// a `Laplace` outcome (zero deadline, or every floor too high)
    /// serves the closed-form fallback while a background solve at
    /// [`TierPolicy::background_tier`] warms the cache. Cache hits are
    /// scanned best-tier-first up to the deadline's tier, so a batch
    /// under pressure still serves the best mechanism already paid
    /// for. Like the base deadline this is logical — no wall clock is
    /// raced, and batch outputs are reproducible on arbitrarily slow
    /// machines.
    pub fn obfuscate_batch_with_deadline<R: RngExt + ?Sized>(
        &mut self,
        requests: &[(WorkerId, Location, f64)],
        deadline: Duration,
        rng: &mut R,
    ) -> Vec<Obfuscation> {
        let obs = vlp_obs::global();
        let _span = obs.start(metrics::BATCH_TIME);
        obs.incr(metrics::REQUESTS, requests.len() as u64);
        let shared = &self.core.shared;
        let batch = shared.epoch.fetch_add(1, Ordering::SeqCst);
        let stale_capacity = shared.config.resilience.stale_capacity;
        let tiers = shared.config.tiers;
        let target = tiers.tier_for(deadline);

        // Batch-scoped chaos: deadline jitter, evict storms, and shard
        // blackouts are keyed by the batch index, so a schedule reads
        // as a timeline. With an empty plan this block is inert.
        let plan = Arc::clone(&shared.chaos);
        let chaos_on = !plan.is_empty();
        let mut wait_for_solves = target != QualityTier::Laplace;
        let mut blackout: HashSet<usize> = HashSet::new();
        if chaos_on {
            if plan.evaluate(site::SERVICE_DEADLINE_JITTER, batch) {
                wait_for_solves = false;
            }
            if plan.evaluate(site::SERVICE_EVICT_STORM, batch) {
                for shard in &shared.shards {
                    let mut t = lock(&shard.table);
                    for (bucket, entry) in t.cache.drain_all() {
                        t.demote(stale_capacity, bucket, entry, batch);
                    }
                }
            }
            for s in 0..shared.shards.len() {
                if plan.evaluate(&site::shard_blackout(s), batch) {
                    blackout.insert(s);
                }
            }
        }

        // Breaker tick: open breakers whose cooldown elapsed admit one
        // probe this batch.
        let cooldown = shared.config.resilience.breaker_cooldown;
        for shard in &shared.shards {
            if lock(&shard.table).breaker.tick(batch, cooldown) {
                obs.incr(metrics::BREAKER_HALF_OPEN, 1);
            }
        }

        // The tier this batch's admitted misses are solved at: the
        // deadline's tier when the batch waits, otherwise the best
        // background tier (the solve completes and warms the cache;
        // the request itself serves the fallback).
        let miss_tier = if wait_for_solves {
            target
        } else {
            tiers.background_tier()
        };
        // Cache hits are scanned best-first, but never at a tier
        // *better* than the deadline allows to solve — that keeps the
        // default (all-Exact) policy scanning exactly one key, as
        // before tiers existed. A zero deadline scans every solved
        // tier: any cached LP optimum beats building nothing.
        let scan_cap = target.min(QualityTier::Spanner);

        // Phase A: map requests into shards, locate their intervals
        // (which fixes the serving neighborhood — always 0 in
        // full-shard mode), and classify hit/miss.
        let engines: Vec<EngineSnapshot> = shared.shards.iter().map(|sh| sh.engine()).collect();
        struct Resolved {
            worker: WorkerId,
            shard: usize,
            local: Location,
            interval: usize,
            key: (usize, MechKey),
            canonical: f64,
            was_hit: bool,
        }
        let mut resolved: Vec<Resolved> = Vec::with_capacity(requests.len());
        let mut missing: Vec<((usize, MechKey), f64)> = Vec::new();
        let mut missing_seen: HashSet<(usize, MechKey)> = HashSet::new();
        let (mut hits, mut misses) = (0u64, 0u64);
        for &(worker, loc, epsilon) in requests {
            let Some((shard, local)) = shared.partition.to_local(loc) else {
                obs.incr(metrics::OFF_PARTITION, 1);
                continue;
            };
            let (bucket, canonical) = shared.bucket(epsilon);
            let interval = engines[shard]
                .locate(local)
                .expect("shard-local location lies on the shard");
            let slot = MechKey {
                nb: engines[shard].neighborhood_of(interval),
                bucket,
                tier: QualityTier::Exact,
            };
            let hit_tier = {
                let t = lock(&shared.shards[shard].table);
                QualityTier::ALL
                    .into_iter()
                    .take_while(|&tier| tier <= scan_cap)
                    .find(|&tier| t.cache.contains(slot.at_tier(tier)))
            };
            let was_hit = hit_tier.is_some();
            let key = (shard, slot.at_tier(hit_tier.unwrap_or(miss_tier)));
            if was_hit {
                hits += 1;
            } else {
                misses += 1;
                if missing_seen.insert(key) {
                    missing.push((key, canonical));
                }
            }
            resolved.push(Resolved {
                worker,
                shard,
                local,
                interval,
                key,
                canonical,
                was_hit,
            });
        }
        obs.incr(metrics::CACHE_HITS, hits);
        obs.incr(metrics::CACHE_MISSES, misses);

        // Gate misses through the breakers: open shards shed, half-open
        // shards admit one probe, blacked-out shards fail instantly.
        let mut to_solve: Vec<((usize, MechKey), f64)> = Vec::new();
        let mut outcomes: Vec<((usize, MechKey), MissOutcome)> = Vec::new();
        let mut probe_used: HashSet<usize> = HashSet::new();
        for &(key, eps) in &missing {
            let state = lock(&shared.shards[key.0].table).breaker.state;
            match state {
                BreakerState::Open => outcomes.push((key, MissOutcome::Shed)),
                BreakerState::HalfOpen if !probe_used.insert(key.0) => {
                    outcomes.push((key, MissOutcome::Shed));
                }
                _ if blackout.contains(&key.0) => outcomes.push((key, MissOutcome::Blackout)),
                _ => to_solve.push((key, eps)),
            }
        }

        // Phase B: feed the admitted misses through the shard solver
        // queues in reply mode and collect every outcome. Workers run
        // the retry ladder (rung 1) exactly as on the open-loop path;
        // the reply channel closes once the last job is done.
        if !to_solve.is_empty() {
            obs.incr(metrics::QUEUE_ENQUEUED, to_solve.len() as u64);
            let (tx, rx) = mpsc::channel();
            for &(key, eps) in &to_solve {
                let enqueued = shared.enqueue_batch(key.0, key.1, eps, batch, tx.clone());
                assert!(enqueued, "serving core is running");
            }
            drop(tx);
            outcomes.extend(rx);
        }

        // Phase C: account outcomes in solve-key order (reply arrival
        // order depends on thread timing; breaker and cache state must
        // not), cache everything that solved, then serve.
        outcomes.sort_by_key(|o| o.0);
        let threshold = shared.config.resilience.breaker_threshold;
        let local_mode = shared.config.local.is_some();
        let mut in_time: HashSet<(usize, MechKey)> = HashSet::new();
        let mut fresh: HashMap<(usize, MechKey), CachedSolve> = HashMap::new();
        let mut failed_keys: HashSet<(usize, MechKey)> = HashSet::new();
        for (key, outcome) in outcomes {
            let mut t = lock(&shared.shards[key.0].table);
            match outcome {
                MissOutcome::Solved(solve, elapsed, retries, panics) => {
                    obs.record_duration(metrics::SOLVE_TIME, elapsed);
                    metrics::record_solve_stats(obs, &solve.stats, local_mode);
                    if retries > 0 {
                        obs.incr(metrics::RETRY_ATTEMPTS, u64::from(retries));
                    }
                    if panics > 0 {
                        obs.incr(metrics::PANICS_CAUGHT, u64::from(panics));
                    }
                    if t.breaker.on_success() {
                        obs.incr(metrics::BREAKER_RECLOSED, 1);
                    }
                    if let Some((evicted_bucket, evicted)) = t.cache.insert(key.1, solve.clone()) {
                        obs.incr(metrics::CACHE_EVICTIONS, 1);
                        t.demote(stale_capacity, evicted_bucket, evicted, batch);
                    }
                    // A fresh optimum supersedes any stale copy.
                    t.stale.remove(&key.1);
                    if wait_for_solves {
                        in_time.insert(key);
                    }
                    fresh.insert(key, solve);
                }
                MissOutcome::Failed(elapsed, retries, panics) => {
                    obs.record_duration(metrics::SOLVE_TIME, elapsed);
                    if retries > 0 {
                        obs.incr(metrics::RETRY_ATTEMPTS, u64::from(retries));
                    }
                    if panics > 0 {
                        obs.incr(metrics::PANICS_CAUGHT, u64::from(panics));
                    }
                    obs.incr(metrics::SOLVE_ERRORS, 1);
                    if t.breaker.on_failure(batch, threshold) {
                        obs.incr(metrics::BREAKER_OPENED, 1);
                    }
                    failed_keys.insert(key);
                }
                MissOutcome::Blackout => {
                    obs.incr(metrics::SOLVE_ERRORS, 1);
                    if t.breaker.on_failure(batch, threshold) {
                        obs.incr(metrics::BREAKER_OPENED, 1);
                    }
                    failed_keys.insert(key);
                }
                MissOutcome::Shed => {
                    obs.incr(metrics::BREAKER_SHED, 1);
                    failed_keys.insert(key);
                }
            }
        }

        let mut out = Vec::with_capacity(resolved.len());
        let (mut optimal, mut stale_served, mut fallback) = (0u64, 0u64, 0u64);
        let mut tier_served = [0u64; 4];
        for r in resolved {
            let engine = &engines[r.shard];
            let (mechanism, served) = {
                let mut t = lock(&shared.shards[r.shard].table);
                let optimal_entry = if r.was_hit || in_time.contains(&r.key) {
                    // A hit can still have been evicted by this batch's
                    // own inserts; `fresh` keeps same-batch solves
                    // reachable.
                    t.cache
                        .get(r.key.1)
                        .map(|e| Arc::clone(&e.mechanism))
                        .or_else(|| fresh.get(&r.key).map(|e| Arc::clone(&e.mechanism)))
                } else {
                    None
                };
                // Stale serving (rung 3) only engages when the key's
                // solve *failed* or was shed — a plain "not waited for"
                // miss still falls back, exactly as the fault-free
                // service does.
                match optimal_entry {
                    Some(m) => (m, Served::Optimal { cached: r.was_hit }),
                    None => match failed_keys
                        .contains(&r.key)
                        .then(|| t.stale.get(&r.key.1))
                        .flatten()
                    {
                        Some((entry, demoted)) => (
                            Arc::clone(&entry.mechanism),
                            Served::Stale {
                                age_batches: batch.saturating_sub(*demoted),
                            },
                        ),
                        None => (
                            t.fallback_entry(engine, r.key.1, r.canonical),
                            Served::Fallback,
                        ),
                    },
                }
            };
            // Provenance: optimal and stale serves carry the tier of
            // the key they were solved at; every fallback serve is the
            // graph-Laplace tier, whatever rung shed it there.
            let tier = match served {
                Served::Optimal { .. } | Served::Stale { .. } => r.key.1.tier,
                Served::Fallback => QualityTier::Laplace,
            };
            match served {
                Served::Optimal { .. } => optimal += 1,
                Served::Stale { .. } => stale_served += 1,
                Served::Fallback => fallback += 1,
            }
            tier_served[tier as usize] += 1;
            let row = engine.local_row(r.key.1.nb, r.interval);
            let j = engine.global_interval(r.key.1.nb, mechanism.sample_interval(row, rng));
            let location = engine
                .transplant(r.local, j)
                .expect("reported interval lies on the shard");
            out.push(Obfuscation {
                worker: r.worker,
                shard: r.shard,
                interval: j,
                location,
                epsilon: r.canonical,
                tier,
                served,
            });
        }
        obs.incr(metrics::OPTIMAL_SERVED, optimal);
        obs.incr(metrics::STALE_SERVED, stale_served);
        obs.incr(metrics::FALLBACK_SERVED, fallback);
        for (tier, served) in QualityTier::ALL.into_iter().zip(tier_served) {
            if served > 0 {
                obs.incr(metrics::tier_served_metric(tier), served);
            }
        }

        // Export the health snapshot: one breaker-state sample per
        // shard per batch.
        for (s, shard) in shared.shards.iter().enumerate() {
            obs.push(
                &metrics::breaker_state_series(s),
                lock(&shard.table).breaker.state.as_f64(),
            );
        }
        out
    }

    /// Publishes a task at `interval` of shard `s`; ids are numbered
    /// per shard.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `interval` is out of range, or in
    /// locally-relevant mode (the assignment subsystem needs the dense
    /// interval-distance matrix of the full-shard engine).
    pub fn publish_task(&mut self, s: usize, interval: usize) -> TaskId {
        let len = self.shard_instance(s).len();
        assert!(interval < len, "task interval out of range");
        let shard = &mut self.tasks[s];
        let id = TaskId(shard.tasks.len());
        shard.tasks.push(Task { id, interval });
        shard.pending.push(id);
        id
    }

    /// Tasks of shard `s` waiting for assignment.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn pending_tasks(&self, s: usize) -> &[TaskId] {
        &self.tasks[s].pending
    }

    /// Runs one assignment snapshot on shard `s` over reports
    /// `(worker, reported interval)` — the same Hungarian-matching
    /// path as [`crate::Server::snapshot`], scoped to the shard.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range, or in locally-relevant mode (the
    /// assignment subsystem needs the dense interval-distance matrix of
    /// the full-shard engine).
    pub fn snapshot(&mut self, s: usize, reports: &[(WorkerId, usize)]) -> SnapshotOutcome {
        let instance = self.shard_instance(s);
        let shard = &mut self.tasks[s];
        assign_snapshot(
            &instance.interval_dists,
            &shard.tasks,
            &mut shard.pending,
            reports,
        )
    }

    /// Fans a batch of served obfuscations out into per-shard
    /// assignment snapshots. Returns `(shard, outcome)` for every
    /// shard that received at least one report, in shard order.
    pub fn snapshot_batch(&mut self, reports: &[Obfuscation]) -> Vec<(usize, SnapshotOutcome)> {
        let mut by_shard: Vec<Vec<(WorkerId, usize)>> = vec![Vec::new(); self.shard_count()];
        for r in reports {
            by_shard[r.shard].push((r.worker, r.interval));
        }
        by_shard
            .into_iter()
            .enumerate()
            .filter(|(_, reports)| !reports.is_empty())
            .map(|(s, reports)| {
                let outcome = self.snapshot(s, &reports);
                (s, outcome)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use roadnet::generators;
    use vlp_core::privacy;
    use vlp_obs::failpoint::FaultMode;

    fn service(deadline: Duration) -> MechanismService {
        let g = generators::grid(3, 4, 0.4, true);
        MechanismService::new(
            g,
            ServiceConfig {
                n_shards: 2,
                delta: 0.2,
                solve_deadline: deadline,
                ..ServiceConfig::default()
            },
        )
    }

    /// One request per shard, placed on the first global edge that
    /// maps into each shard (same 3×4 grid as [`service`]).
    fn requests(svc: &MechanismService, epsilon: f64) -> Vec<(WorkerId, Location, f64)> {
        let g = generators::grid(3, 4, 0.4, true);
        let mut per_shard: HashMap<usize, Location> = HashMap::new();
        for e in 0..g.edge_count() {
            let loc = Location::new(roadnet::EdgeId(e), 0.1);
            if let Some((s, _)) = svc.partition().to_local(loc) {
                per_shard.entry(s).or_insert(loc);
            }
        }
        (0..svc.shard_count())
            .filter_map(|s| per_shard.get(&s).map(|&loc| (WorkerId(s), loc, epsilon)))
            .collect()
    }

    #[test]
    fn zero_deadline_serves_fallback_then_cache_hits() {
        let mut svc = service(Duration::ZERO);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let reqs = requests(&svc, 5.0);
        assert_eq!(reqs.len(), 2, "one request per shard");

        let cold = svc.obfuscate_batch(&reqs, &mut rng);
        assert_eq!(cold.len(), 2);
        assert!(cold.iter().all(|o| o.served == Served::Fallback));
        // The solves still landed in the cache.
        assert_eq!(svc.cached_mechanisms(), 2);

        let warm = svc.obfuscate_batch(&reqs, &mut rng);
        assert!(warm
            .iter()
            .all(|o| o.served == Served::Optimal { cached: true }));
    }

    #[test]
    fn generous_deadline_serves_optimal_on_cold_cache() {
        let mut svc = service(Duration::from_secs(60));
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let reqs = requests(&svc, 5.0);
        let out = svc.obfuscate_batch(&reqs, &mut rng);
        assert!(out
            .iter()
            .all(|o| o.served == Served::Optimal { cached: false }));
    }

    #[test]
    fn epsilon_buckets_round_down_and_share_cache_entries() {
        let mut svc = service(Duration::ZERO);
        assert_eq!(svc.canonical_epsilon(5.0), 5.0);
        assert_eq!(svc.canonical_epsilon(5.1), 5.0);
        assert_eq!(svc.canonical_epsilon(5.24), 5.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut reqs = requests(&svc, 5.0);
        let extra: Vec<_> = reqs.iter().map(|&(w, l, _)| (w, l, 5.2)).collect();
        reqs.extend(extra);
        let out = svc.obfuscate_batch(&reqs, &mut rng);
        // 5.0 and 5.2 share a bucket: one entry per shard, and every
        // outcome reports the canonical ε.
        assert_eq!(svc.cached_mechanisms(), 2);
        assert!(out.iter().all(|o| o.epsilon == 5.0));
    }

    #[test]
    #[should_panic(expected = "below the bucket width")]
    fn sub_bucket_epsilon_is_rejected() {
        let svc = service(Duration::ZERO);
        svc.canonical_epsilon(0.1);
    }

    #[test]
    fn lru_evicts_least_recently_used_entry() {
        let mut cache = ladder::LruCache::new(2);
        let entry = || CachedSolve {
            mechanism: Arc::new(Mechanism::uniform(2)),
            quality_loss: 0.0,
            stats: ladder::SolveStats {
                support: 2,
                lp_vars: 4,
                lp_rows: 0,
            },
        };
        let key = MechKey::full;
        assert!(cache.insert(key(1), entry()).is_none());
        assert!(cache.insert(key(2), entry()).is_none());
        assert!(cache.get(key(1)).is_some()); // bump bucket 1
        let evicted = cache.insert(key(3), entry()); // evicts bucket 2
        assert_eq!(evicted.map(|(k, _)| k), Some(key(2)));
        assert!(cache.contains(key(1)));
        assert!(!cache.contains(key(2)));
        assert!(cache.contains(key(3)));
    }

    #[test]
    fn every_served_mechanism_passes_privacy_verify() {
        let mut svc = service(Duration::ZERO);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let reqs = requests(&svc, 5.0);
        let _ = svc.obfuscate_batch(&reqs, &mut rng); // fallback round
        let _ = svc.obfuscate_batch(&reqs, &mut rng); // cached round
        for &(_, loc, eps) in &reqs {
            let (s, _) = svc.partition().to_local(loc).unwrap();
            let canonical = svc.canonical_epsilon(eps);
            let inst = svc.shard_instance(s);
            let spec = vlp_core::PrivacySpec::full(&inst.aux, canonical, f64::INFINITY);
            let fallback = svc.fallback_mechanism(s, eps).expect("fallback built");
            assert!(privacy::verify(&fallback, &spec, 1e-6));
            let cached = svc.cached_mechanism(s, eps).expect("solve cached");
            assert!(privacy::verify(&cached, &spec, 1e-6));
        }
    }

    #[test]
    fn prior_update_invalidates_only_that_shard() {
        let mut svc = service(Duration::ZERO);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let reqs = requests(&svc, 5.0);
        let _ = svc.obfuscate_batch(&reqs, &mut rng);
        assert_eq!(svc.cached_mechanisms(), 2);
        let k = svc.shard_instance(0).len();
        svc.set_worker_prior(0, Prior::uniform(k));
        assert_eq!(svc.cached_mechanisms(), 1);
        assert!(svc.cached_mechanism(0, 5.0).is_none());
        assert!(svc.cached_mechanism(1, 5.0).is_some());
        // The displaced mechanism was demoted, not dropped.
        assert!(svc.stale_mechanism(0, 5.0).is_some());
    }

    #[test]
    fn snapshot_batch_feeds_per_shard_assignment() {
        let mut svc = service(Duration::ZERO);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for s in 0..svc.shard_count() {
            svc.publish_task(s, 0);
        }
        let reqs = requests(&svc, 5.0);
        let served = svc.obfuscate_batch(&reqs, &mut rng);
        let outcomes = svc.snapshot_batch(&served);
        assert_eq!(outcomes.len(), 2);
        for (s, outcome) in outcomes {
            assert_eq!(outcome.assignments.len(), 1, "shard {s} assigns its task");
            assert!(svc.pending_tasks(s).is_empty());
        }
    }

    /// The full ladder, scripted end to end: an evict storm forces a
    /// miss every batch, a shard-0 blackout over batches `[1, 4)`
    /// drives three consecutive failures (threshold) so the breaker
    /// opens, the stale store serves through the outage with growing
    /// age, and the half-open probe after the cooldown re-closes it.
    #[test]
    fn breaker_opens_serves_stale_and_recloses_after_probe() {
        let g = generators::grid(3, 4, 0.4, true);
        let chaos = FaultPlan::new(7)
            .with(site::SERVICE_EVICT_STORM, FaultMode::Every(1))
            .with(
                site::shard_blackout(0),
                FaultMode::Window { from: 1, to: 4 },
            );
        let mut svc = MechanismService::new(
            g,
            ServiceConfig {
                n_shards: 2,
                delta: 0.2,
                solve_deadline: Duration::ZERO,
                resilience: ResilienceConfig {
                    breaker_threshold: 3,
                    breaker_cooldown: 2,
                    ..ResilienceConfig::default()
                },
                chaos,
                ..ServiceConfig::default()
            },
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let reqs = requests(&svc, 5.0);
        assert_eq!(reqs.len(), 2, "one request per shard");

        let mut shard0_served = Vec::new();
        let mut states = Vec::new();
        for _ in 0..6 {
            let out = svc.obfuscate_batch(&reqs, &mut rng);
            shard0_served.push(out[0].served);
            states.push(svc.breaker_state(0));
        }
        assert_eq!(
            states,
            [
                BreakerState::Closed, // batch 0: clean solve (zero deadline)
                BreakerState::Closed, // batch 1: blackout failure 1
                BreakerState::Closed, // batch 2: blackout failure 2
                BreakerState::Open,   // batch 3: failure 3 trips it
                BreakerState::Open,   // batch 4: cooling down (shed)
                BreakerState::Closed, // batch 5: half-open probe re-closes
            ]
        );
        assert_eq!(
            shard0_served,
            [
                Served::Fallback, // cold, zero deadline
                Served::Stale { age_batches: 0 },
                Served::Stale { age_batches: 1 },
                Served::Stale { age_batches: 2 },
                Served::Stale { age_batches: 3 }, // shed while open
                Served::Fallback,                 // probe solved late (zero deadline)
            ]
        );
        // Shard 1 is untouched by the blackout and stays closed.
        assert_eq!(svc.breaker_state(1), BreakerState::Closed);
        // The health snapshot reflected the outage and the recovery.
        let health = svc.health();
        assert!(health.ready);
        assert_eq!(health.batches, 6);
        assert_eq!(health.shards[0].consecutive_failures, 0);
    }

    #[test]
    fn health_snapshot_reports_open_breaker_as_not_ready() {
        let g = generators::grid(3, 4, 0.4, true);
        let chaos = FaultPlan::new(1)
            .with(site::SERVICE_EVICT_STORM, FaultMode::Every(1))
            .with(site::shard_blackout(0), FaultMode::Always);
        let mut svc = MechanismService::new(
            g,
            ServiceConfig {
                n_shards: 2,
                delta: 0.2,
                solve_deadline: Duration::ZERO,
                resilience: ResilienceConfig {
                    breaker_threshold: 1,
                    breaker_cooldown: 100,
                    ..ResilienceConfig::default()
                },
                chaos,
                ..ServiceConfig::default()
            },
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let reqs = requests(&svc, 5.0);
        let _ = svc.obfuscate_batch(&reqs, &mut rng);
        let health = svc.health();
        assert!(!health.ready, "an open breaker must clear readiness");
        assert_eq!(health.shards[0].breaker, BreakerState::Open);
        assert_eq!(health.shards[0].opened_at_batch, Some(0));
        assert_eq!(health.shards[1].breaker, BreakerState::Closed);
    }

    /// An empty fault plan must leave the ladder fully inert: the
    /// service's outputs are identical to a service that has no chaos
    /// configured at all, batch for batch, bit for bit.
    #[test]
    fn empty_fault_plan_is_bit_identical_to_no_plan() {
        let mk = |chaos: FaultPlan| {
            MechanismService::new(
                generators::grid(3, 4, 0.4, true),
                ServiceConfig {
                    n_shards: 2,
                    delta: 0.2,
                    solve_deadline: Duration::ZERO,
                    chaos,
                    ..ServiceConfig::default()
                },
            )
        };
        let mut a = mk(FaultPlan::default());
        let mut b = mk(FaultPlan::new(0xDEAD_BEEF)); // seeded but empty
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(31);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(31);
        let reqs = requests(&a, 5.0);
        for _ in 0..3 {
            let out_a = a.obfuscate_batch(&reqs, &mut rng_a);
            let out_b = b.obfuscate_batch(&reqs, &mut rng_b);
            assert_eq!(out_a, out_b);
        }
    }

    /// Pins the direction of ε-bucket rounding: requested budgets round
    /// *down* to the grid, so the canonical ε is never larger than the
    /// request — the served mechanism is never *less* private than
    /// asked for. A mechanism valid at the canonical ε is automatically
    /// valid at the (larger) requested ε because ε-Geo-I constraints
    /// relax monotonically in ε.
    #[test]
    fn epsilon_bucket_rounding_direction_is_never_less_private() {
        let svc = service(Duration::ZERO);
        let width = svc.config().epsilon_bucket;
        for step in 0..40 {
            let requested = 0.25 + 0.17 * step as f64;
            let canonical = svc.canonical_epsilon(requested);
            assert!(
                canonical <= requested + 1e-12,
                "canonical ε {canonical} must not exceed requested {requested}"
            );
            let grid = (canonical / width).round();
            assert!(
                (canonical - grid * width).abs() < 1e-9,
                "canonical ε {canonical} must sit on the bucket grid"
            );
        }
        // Monotonicity makes the rounding safe: a mechanism built at
        // the canonical (smaller) ε still verifies at the requested ε.
        let requested = 5.24;
        let canonical = svc.canonical_epsilon(requested);
        assert_eq!(canonical, 5.0);
        let inst = svc.shard_instance(0);
        let mechanism = inst.fallback(canonical);
        for eps in [canonical, requested] {
            let spec = vlp_core::PrivacySpec::full(&inst.aux, eps, f64::INFINITY);
            assert!(privacy::verify(&mechanism, &spec, 1e-6));
        }
    }

    /// Every rung's product — cached optimum, stale entry, fallback —
    /// satisfies full-spec ε-Geo-I at its canonical ε, even mid-outage.
    #[test]
    fn live_mechanisms_stay_epsilon_valid_under_faults() {
        let g = generators::grid(3, 4, 0.4, true);
        let chaos = FaultPlan::new(99)
            .with(site::SERVICE_EVICT_STORM, FaultMode::Every(2))
            .with(
                site::shard_blackout(0),
                FaultMode::Window { from: 1, to: 3 },
            );
        let mut svc = MechanismService::new(
            g,
            ServiceConfig {
                n_shards: 2,
                delta: 0.2,
                solve_deadline: Duration::ZERO,
                chaos,
                ..ServiceConfig::default()
            },
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let reqs = requests(&svc, 5.0);
        for _ in 0..4 {
            let _ = svc.obfuscate_batch(&reqs, &mut rng);
            for (s, eps, mechanism) in svc.live_mechanisms() {
                let inst = svc.shard_instance(s);
                let spec = vlp_core::PrivacySpec::full(&inst.aux, eps, f64::INFINITY);
                assert!(
                    privacy::verify(&mechanism, &spec, 1e-6),
                    "shard {s} mechanism at ε={eps} must stay ε-Geo-I valid"
                );
            }
        }
    }

    #[test]
    fn off_partition_requests_are_skipped() {
        let mut svc = service(Duration::ZERO);
        let cross = svc.partition().cross_edges().to_vec();
        if cross.is_empty() {
            return; // nothing to test on this map
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let out = svc.obfuscate_batch(
            &[(WorkerId(0), Location::new(cross[0], 0.1), 5.0)],
            &mut rng,
        );
        assert!(out.is_empty());
        let resp = svc.submit(WorkerId(0), Location::new(cross[0], 0.1), 5.0, &mut rng);
        assert_eq!(
            resp,
            Response::OffPartition {
                worker: WorkerId(0)
            }
        );
    }

    /// The open-loop caller path: a cold submit warms the cache
    /// through the solve queue and serves the fallback meanwhile;
    /// after `quiesce`, the same key is a pure cache hit that never
    /// touches the queue (pinned via the per-shard counters).
    #[test]
    fn submit_serves_hits_on_caller_path_without_queueing() {
        let svc = service(Duration::ZERO);
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        let reqs = requests(&svc, 5.0);
        for &(w, loc, eps) in &reqs {
            match svc.submit(w, loc, eps, &mut rng) {
                Response::Served(o) => assert_eq!(o.served, Served::Fallback),
                other => panic!("cold submit must serve the fallback, got {other:?}"),
            }
        }
        svc.quiesce();
        // Warm: every submit is a hit; the queue counters stay frozen.
        let enqueued_before: u64 = svc
            .core
            .shared
            .shards
            .iter()
            .map(|sh| lock(&sh.table).stats.enqueued)
            .sum();
        for round in 0..50 {
            for &(w, loc, eps) in &reqs {
                match svc.submit(w, loc, eps, &mut rng) {
                    Response::Served(o) => assert_eq!(
                        o.served,
                        Served::Optimal { cached: true },
                        "round {round}: warm submit must hit"
                    ),
                    other => panic!("warm submit must serve, got {other:?}"),
                }
            }
        }
        let enqueued_after: u64 = svc
            .core
            .shared
            .shards
            .iter()
            .map(|sh| lock(&sh.table).stats.enqueued)
            .sum();
        assert_eq!(
            enqueued_before, enqueued_after,
            "a cache-hit-only workload must never enqueue a solve"
        );
        // And the warm submits sample the same mechanism the cache
        // audits expose.
        for &(_, loc, eps) in &reqs {
            let (s, _) = svc.partition().to_local(loc).unwrap();
            assert!(svc.cached_mechanism(s, eps).is_some());
        }
    }

    /// Cold keys on a blacked-out shard are rejected outright: shed
    /// with nothing cached, stale, or prebuilt — explicit backpressure
    /// instead of blocking or silently queueing.
    #[test]
    fn cold_shed_submit_is_rejected_not_blocked() {
        let g = generators::grid(3, 4, 0.4, true);
        let chaos = FaultPlan::new(3).with(site::shard_blackout(0), FaultMode::Always);
        let svc = MechanismService::new(
            g,
            ServiceConfig {
                n_shards: 2,
                delta: 0.2,
                resilience: ResilienceConfig {
                    breaker_threshold: 1,
                    breaker_cooldown: 100,
                    ..ResilienceConfig::default()
                },
                chaos,
                ..ServiceConfig::default()
            },
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        svc.tick(); // arm the blackout for this epoch
        let reqs = requests(&svc, 5.0);
        let (shard0_req, shard1_req) = (&reqs[0], &reqs[1]);
        // Shard 0 is blacked out and completely cold: rejected.
        let resp = svc.submit(shard0_req.0, shard0_req.1, shard0_req.2, &mut rng);
        assert_eq!(
            resp,
            Response::Rejected {
                worker: shard0_req.0,
                shard: 0,
                epsilon: 5.0
            }
        );
        // The single blackout failure tripped the threshold-1 breaker.
        assert_eq!(svc.breaker_state(0), BreakerState::Open);
        // Shard 1 is healthy and serves (fallback while warming).
        match svc.submit(shard1_req.0, shard1_req.1, shard1_req.2, &mut rng) {
            Response::Served(o) => assert_eq!(o.served, Served::Fallback),
            other => panic!("healthy shard must serve, got {other:?}"),
        }
        svc.quiesce();
    }

    /// Graceful shutdown drains every queued solve: each admitted cold
    /// key's optimum is in the cache after `shutdown` returns, and the
    /// core refuses new solves afterwards (cold keys reject, hits
    /// still serve).
    #[test]
    fn shutdown_drains_queues_and_serves_hits_after() {
        let mut svc = service(Duration::ZERO);
        let mut rng = rand::rngs::StdRng::seed_from_u64(37);
        let reqs = requests(&svc, 5.0);
        let mut admitted = Vec::new();
        for (i, &(w, loc, _)) in reqs.iter().enumerate() {
            // Distinct buckets per shard: ε = 5.0 and 7.5.
            for eps in [5.0, 7.5] {
                match svc.submit(WorkerId(w.0 * 10 + i), loc, eps, &mut rng) {
                    Response::Served(o) => {
                        assert_eq!(o.served, Served::Fallback);
                        admitted.push((o.shard, eps));
                    }
                    other => panic!("cold submit must be admitted, got {other:?}"),
                }
            }
        }
        let report = svc.shutdown();
        assert_eq!(report.drained.len(), svc.shard_count());
        // Every admitted solve completed and was cached by the drain.
        for &(s, eps) in &admitted {
            assert!(
                svc.cached_mechanism(s, eps).is_some(),
                "shard {s} ε={eps} must be cached after the drain"
            );
        }
        // Hits still serve; cold keys are rejected (no workers left).
        let (w, loc, _) = reqs[0];
        match svc.submit(w, loc, 5.0, &mut rng) {
            Response::Served(o) => assert_eq!(o.served, Served::Optimal { cached: true }),
            other => panic!("post-shutdown hit must serve, got {other:?}"),
        }
        assert!(matches!(
            svc.submit(w, loc, 12.25, &mut rng),
            Response::Rejected { .. }
        ));
        // Idempotent.
        let again = svc.shutdown();
        assert_eq!(again.total(), 0);
    }

    /// The batch and open-loop frontends agree: a mechanism cached by
    /// a batch serves open-loop hits, and vice versa.
    #[test]
    fn batch_and_open_loop_share_one_cache() {
        let mut svc = service(Duration::ZERO);
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let reqs = requests(&svc, 5.0);
        let _ = svc.obfuscate_batch(&reqs, &mut rng); // warms via batch
        let (w, loc, eps) = reqs[0];
        match svc.submit(w, loc, eps, &mut rng) {
            Response::Served(o) => assert_eq!(o.served, Served::Optimal { cached: true }),
            other => panic!("open-loop hit on batch-warmed cache, got {other:?}"),
        }
        // Open-loop warming serves the next *batch* too.
        let handle = svc.handle();
        for &(w, loc, _) in &reqs {
            let _ = handle.submit(w, loc, 7.5, &mut rng);
        }
        handle.quiesce();
        let reqs_75: Vec<_> = reqs.iter().map(|&(w, l, _)| (w, l, 7.5)).collect();
        let out = svc.obfuscate_batch(&reqs_75, &mut rng);
        assert!(out
            .iter()
            .all(|o| o.served == Served::Optimal { cached: true }));
    }

    fn local_service(rho: f64, radius: f64, deadline: Duration) -> MechanismService {
        MechanismService::new(
            generators::grid(3, 4, 0.4, true),
            ServiceConfig {
                n_shards: 2,
                delta: 0.2,
                radius,
                solve_deadline: deadline,
                local: Some(LocalConfig { rho }),
                ..ServiceConfig::default()
            },
        )
    }

    /// The `(shard, neighborhood)` key a request routes to, recomputed
    /// from the public local-mode accessors.
    fn route(svc: &MechanismService, loc: Location) -> (usize, u32) {
        let (s, local) = svc.partition().to_local(loc).unwrap();
        let shard = svc.local_shard(s).expect("local mode");
        let i = shard.disc().locate(shard.graph(), local).unwrap();
        (s, shard.neighborhood_of(i))
    }

    /// Locally-relevant mode with ρ = ∞ degenerates to one whole-shard
    /// neighborhood and must reproduce the full-shard engine bit for
    /// bit — same provenance, same sampled intervals, same locations,
    /// batch after batch.
    #[test]
    fn local_mode_with_infinite_rho_matches_full_mode_bit_for_bit() {
        let mk = |local: Option<LocalConfig>| {
            MechanismService::new(
                generators::grid(3, 4, 0.4, true),
                ServiceConfig {
                    n_shards: 2,
                    delta: 0.2,
                    solve_deadline: Duration::ZERO,
                    local,
                    ..ServiceConfig::default()
                },
            )
        };
        let mut full = mk(None);
        let mut local = mk(Some(LocalConfig { rho: f64::INFINITY }));
        let mut rng_full = rand::rngs::StdRng::seed_from_u64(47);
        let mut rng_local = rand::rngs::StdRng::seed_from_u64(47);
        let mut reqs = requests(&full, 5.0);
        let extra: Vec<_> = reqs.iter().map(|&(w, l, _)| (w, l, 7.5)).collect();
        reqs.extend(extra);
        for _ in 0..3 {
            let out_full = full.obfuscate_batch(&reqs, &mut rng_full);
            let out_local = local.obfuscate_batch(&reqs, &mut rng_local);
            assert_eq!(out_full, out_local);
        }
        assert_eq!(full.cached_mechanisms(), local.cached_mechanisms());
        for s in 0..full.shard_count() {
            let plan_len = local.local_shard(s).unwrap().plan().neighborhood_count();
            assert_eq!(plan_len, 1, "infinite rho is one whole-shard neighborhood");
        }
    }

    /// Finite-radius local mode: every request is served a mechanism
    /// whose support covers its neighborhood, every live mechanism
    /// (optimum and fallback) verifies against its restricted audit
    /// spec, and the solve-shape telemetry is recorded.
    #[test]
    fn local_mode_serves_restricted_mechanisms_that_audit_clean() {
        let mut svc = local_service(0.4, 0.5, Duration::from_secs(60));
        let mut rng = rand::rngs::StdRng::seed_from_u64(53);
        let reqs = requests(&svc, 5.0);
        let obs = vlp_obs::global();
        let (vars0, support0) = (
            obs.counter(metrics::SOLVE_LP_VARS),
            obs.counter(metrics::SOLVE_SUPPORT),
        );
        let out = svc.obfuscate_batch(&reqs, &mut rng);
        assert_eq!(out.len(), reqs.len());
        assert!(out
            .iter()
            .all(|o| o.served == Served::Optimal { cached: false }));
        // The reported interval lies in the serving neighborhood's
        // support (the support-lifted mechanism maps back to global
        // interval ids).
        for (o, &(_, loc, _)) in out.iter().zip(&reqs) {
            let (s, nb) = route(&svc, loc);
            assert_eq!(s, o.shard);
            let shard = svc.local_shard(s).unwrap();
            assert!(
                shard.members(nb).binary_search(&o.interval).is_ok(),
                "reported interval {} outside neighborhood {nb}'s support",
                o.interval
            );
        }
        // Every live mechanism is exactly its neighborhood's size and
        // passes the unreduced restricted-spec audit.
        let keyed = svc.live_mechanisms_keyed();
        assert!(!keyed.is_empty());
        for (s, nb, eps, mechanism) in keyed {
            let shard = svc.local_shard(s).unwrap();
            assert_eq!(mechanism.len(), shard.members(nb).len());
            let spec = shard.audit_spec(nb, eps);
            assert!(
                privacy::verify(&mechanism, &spec, 1e-6),
                "shard {s} neighborhood {nb} mechanism at ε={eps} must audit clean"
            );
        }
        // LP-shape telemetry was recorded (cumulative counters; other
        // concurrently running tests can only add to them).
        assert!(obs.counter(metrics::SOLVE_LP_VARS) > vars0);
        assert!(obs.counter(metrics::SOLVE_SUPPORT) > support0);
        assert!(obs.counter(metrics::LOCAL_NEIGHBORHOODS) > 0);
    }

    /// Cache keys are `(neighborhood, ε-bucket)`: requests routing to
    /// the same neighborhood share one cached mechanism, and the total
    /// cache population equals the number of distinct keys touched.
    #[test]
    fn local_mode_shares_cache_entries_per_neighborhood() {
        let mut svc = local_service(0.4, 0.5, Duration::ZERO);
        let mut rng = rand::rngs::StdRng::seed_from_u64(59);
        // Two co-located vehicles per shard: same neighborhood, same
        // bucket (5.0 and 5.2 round to one bucket) — one entry each.
        let mut reqs = requests(&svc, 5.0);
        let extra: Vec<_> = reqs.iter().map(|&(w, l, _)| (w, l, 5.2)).collect();
        reqs.extend(extra);
        let _ = svc.obfuscate_batch(&reqs, &mut rng);
        let distinct: HashSet<(usize, u32)> =
            reqs.iter().map(|&(_, loc, _)| route(&svc, loc)).collect();
        assert_eq!(svc.cached_mechanisms(), distinct.len());
        let warm = svc.obfuscate_batch(&reqs, &mut rng);
        assert!(warm
            .iter()
            .all(|o| o.served == Served::Optimal { cached: true }));
    }

    /// Cold keys in local mode serve the *restricted* graph-Laplace
    /// fallback — sized to the neighborhood, not the shard — while the
    /// optimum is in flight.
    #[test]
    fn local_mode_cold_keys_serve_the_restricted_fallback() {
        let mut svc = local_service(0.4, 0.5, Duration::ZERO);
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        let reqs = requests(&svc, 5.0);
        let out = svc.obfuscate_batch(&reqs, &mut rng);
        assert!(out.iter().all(|o| o.served == Served::Fallback));
        for &(_, loc, eps) in &reqs {
            let (s, nb) = route(&svc, loc);
            let shard = svc.local_shard(s).unwrap();
            let k = shard.members(nb).len();
            assert!(
                k < shard.len(),
                "this map/radius must produce a strict restriction"
            );
            if nb == 0 {
                let fallback = svc.fallback_mechanism(s, eps).expect("fallback built");
                assert_eq!(fallback.len(), k);
            }
        }
    }

    #[test]
    #[should_panic(expected = "requires a finite")]
    fn local_mode_rejects_finite_rho_with_infinite_radius() {
        let _ = local_service(0.4, f64::INFINITY, Duration::ZERO);
    }

    fn tiered_service() -> MechanismService {
        MechanismService::new(
            generators::grid(3, 4, 0.4, true),
            ServiceConfig {
                n_shards: 2,
                delta: 0.2,
                tiers: TierPolicy {
                    cluster_width: 0.3,
                    spanner_stretch: 2.0,
                    exact_floor: Duration::from_millis(150),
                    clustered_floor: Duration::from_millis(50),
                    spanner_floor: Duration::from_millis(10),
                },
                ..ServiceConfig::default()
            },
        )
    }

    /// The deadline floors pick each rung of the quality ladder in
    /// turn: a generous deadline solves `Exact`, tighter ones solve
    /// `Clustered` then `Spanner`, and a zero deadline serves the
    /// `Laplace` fallback while the background solve warms the cache.
    /// Every served tier's mechanism passes the full-spec privacy
    /// audit at its canonical ε.
    #[test]
    fn deadline_floors_walk_the_quality_ladder() {
        let mut svc = tiered_service();
        let mut rng = rand::rngs::StdRng::seed_from_u64(67);
        let schedule = [
            (Duration::from_millis(200), 2.0, QualityTier::Exact),
            (Duration::from_millis(80), 3.0, QualityTier::Clustered),
            (Duration::from_millis(20), 4.0, QualityTier::Spanner),
            (Duration::ZERO, 6.0, QualityTier::Laplace),
        ];
        for (deadline, eps, want) in schedule {
            let reqs = requests(&svc, eps);
            let out = svc.obfuscate_batch_with_deadline(&reqs, deadline, &mut rng);
            assert_eq!(out.len(), reqs.len());
            for o in &out {
                assert_eq!(o.tier, want, "deadline {deadline:?} must serve {want:?}");
                match want {
                    QualityTier::Laplace => assert_eq!(o.served, Served::Fallback),
                    _ => assert_eq!(o.served, Served::Optimal { cached: false }),
                }
            }
        }
        // Whatever the tier, everything live audits clean against the
        // full unreduced spec at its canonical ε.
        for (s, eps, mechanism) in svc.live_mechanisms() {
            let inst = svc.shard_instance(s);
            let spec = vlp_core::PrivacySpec::full(&inst.aux, eps, f64::INFINITY);
            assert!(
                privacy::verify(&mechanism, &spec, 1e-6),
                "shard {s} tiered mechanism at ε={eps} must audit clean"
            );
        }
    }

    /// The tiered hit scan: a key cached at a worse tier serves hits
    /// under a tight deadline, but a generous deadline refuses to
    /// degrade and solves the exact optimum instead. Zero-deadline
    /// batches hit the background-tier solve their own cold round
    /// admitted.
    #[test]
    fn hit_scan_serves_best_cached_tier_within_the_deadline() {
        let mut svc = tiered_service();
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        let reqs = requests(&svc, 3.0);

        // Cold at an 80ms deadline: solved and cached at `Clustered`.
        let out = svc.obfuscate_batch_with_deadline(&reqs, Duration::from_millis(80), &mut rng);
        assert!(out.iter().all(|o| o.tier == QualityTier::Clustered));
        // Same deadline again: a pure hit on the clustered entry.
        let out = svc.obfuscate_batch_with_deadline(&reqs, Duration::from_millis(80), &mut rng);
        assert!(out
            .iter()
            .all(|o| o.tier == QualityTier::Clustered
                && o.served == Served::Optimal { cached: true }));
        // A generous deadline must not serve the degraded entry: it
        // solves (and caches) the exact optimum alongside it.
        let out = svc.obfuscate_batch_with_deadline(&reqs, Duration::from_millis(200), &mut rng);
        assert!(
            out.iter()
                .all(|o| o.tier == QualityTier::Exact
                    && o.served == Served::Optimal { cached: false })
        );
        // A zero deadline scans every solved tier and hits the exact
        // entry rather than falling back.
        let out = svc.obfuscate_batch_with_deadline(&reqs, Duration::ZERO, &mut rng);
        assert!(out
            .iter()
            .all(|o| o.tier == QualityTier::Exact && o.served == Served::Optimal { cached: true }));

        // The background solve a zero-deadline cold batch admits runs
        // at the best tier (exact floor fits an unbounded deadline):
        // the next warm batch hits it.
        let cold = requests(&svc, 8.0);
        let out = svc.obfuscate_batch_with_deadline(&cold, Duration::ZERO, &mut rng);
        assert!(out.iter().all(|o| o.tier == QualityTier::Laplace));
        let out = svc.obfuscate_batch_with_deadline(&cold, Duration::ZERO, &mut rng);
        assert!(out
            .iter()
            .all(|o| o.tier == QualityTier::Exact && o.served == Served::Optimal { cached: true }));
    }

    /// Every metric name this module records is registered in
    /// `vlp_obs::schema` — the registry the `docs_links` CI gate
    /// checks `OPERATIONS.md` against. A new counter that is not added
    /// to the registry fails here, before it can drift from the docs.
    #[test]
    fn every_service_metric_is_in_the_schema_registry() {
        use vlp_obs::schema::is_known_metric;
        let consts = [
            metrics::REQUESTS,
            metrics::BATCH_TIME,
            metrics::CACHE_HITS,
            metrics::CACHE_MISSES,
            metrics::CACHE_EVICTIONS,
            metrics::OPTIMAL_SERVED,
            metrics::FALLBACK_SERVED,
            metrics::SOLVE_TIME,
            metrics::SOLVE_ERRORS,
            metrics::OFF_PARTITION,
            metrics::PRIOR_INVALIDATIONS,
            metrics::RETRY_ATTEMPTS,
            metrics::PANICS_CAUGHT,
            metrics::STALE_SERVED,
            metrics::STALE_DEMOTIONS,
            metrics::BREAKER_OPENED,
            metrics::BREAKER_HALF_OPEN,
            metrics::BREAKER_RECLOSED,
            metrics::BREAKER_SHED,
            metrics::QUEUE_ENQUEUED,
            metrics::QUEUE_COALESCED,
            metrics::QUEUE_FULL,
            metrics::QUEUE_DRAINED,
            metrics::SHED_REJECTED,
            metrics::SHED_DEGRADED,
            metrics::SOLVE_SUPPORT,
            metrics::SOLVE_LP_VARS,
            metrics::SOLVE_LP_ROWS,
            metrics::LOCAL_NEIGHBORHOODS,
            metrics::LOCAL_SOLVES,
            metrics::TIER_EXACT_SERVED,
            metrics::TIER_CLUSTERED_SERVED,
            metrics::TIER_SPANNER_SERVED,
            metrics::TIER_LAPLACE_SERVED,
            metrics::TRACE_CHARGES,
            metrics::TRACE_THROTTLED,
            metrics::TRACE_REFUSALS,
            metrics::TRACE_EXHAUSTED,
            metrics::TRACE_FILL,
        ];
        for name in consts {
            assert!(is_known_metric(name), "unregistered metric `{name}`");
        }
        for s in 0..4 {
            assert!(is_known_metric(&metrics::breaker_state_series(s)));
            assert!(is_known_metric(&metrics::queue_depth_series(s)));
        }
        for tier in QualityTier::ALL {
            assert!(is_known_metric(metrics::tier_served_metric(tier)));
        }
    }

    /// The open-loop path serves tiers too: cold submits warm the
    /// cache at the background tier and report `Laplace` meanwhile,
    /// and warm submits carry the cached tier in their provenance.
    #[test]
    fn submit_reports_tier_provenance() {
        let svc = tiered_service();
        let mut rng = rand::rngs::StdRng::seed_from_u64(73);
        let reqs = requests(&svc, 5.0);
        for &(w, loc, eps) in &reqs {
            match svc.submit(w, loc, eps, &mut rng) {
                Response::Served(o) => {
                    assert_eq!(o.tier, QualityTier::Laplace);
                    assert_eq!(o.served, Served::Fallback);
                }
                other => panic!("cold submit must serve the fallback, got {other:?}"),
            }
        }
        svc.quiesce();
        for &(w, loc, eps) in &reqs {
            match svc.submit(w, loc, eps, &mut rng) {
                Response::Served(o) => {
                    assert_eq!(o.tier, QualityTier::Exact);
                    assert_eq!(o.served, Served::Optimal { cached: true });
                }
                other => panic!("warm submit must hit, got {other:?}"),
            }
        }
    }
}
