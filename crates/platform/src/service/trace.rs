//! Per-vehicle trace privacy accounting and velocity-aware ε
//! adaptation for continuous serving.
//!
//! The paper's threat model is a sporadic report: one location, one ε.
//! A vehicle that reports every 20–30 s leaks more — per-report ε
//! budgets **compose linearly** along the trace (Andrés et al.), so a
//! trace of `T` reports at ε each is only (T·ε)-Geo-I as a whole. Two
//! pieces make continuous serving honest:
//!
//! * [`TraceBudgetConfig`] — a per-vehicle ε-composition **ledger** in
//!   the service ([`ServiceConfig::budget`]). Every served report
//!   charges its canonical (bucketed) ε against the vehicle's trace
//!   budget; as the ledger fills past the throttle knee the granted ε
//!   shrinks linearly toward zero, and once the grant would fall below
//!   one ε-bucket width the report is refused outright
//!   ([`Response::BudgetExhausted`]) — the cumulative ε served to a
//!   vehicle can never exceed its trace budget, by construction.
//! * [`VelocityEpsilon`] — a VA-GI-style adapter: a fast-moving
//!   vehicle's reports are further apart, so coarser obfuscation
//!   (smaller ε) buys the same protection radius per unit of exposure;
//!   a dwelling vehicle gets the full base ε. Scaling ε down with
//!   speed spends the trace budget where it matters.
//!
//! Both knobs stay inside the ε-bucket universe: grants are floored to
//! the bucket grid, so cache keying ([`MechKey`]) and the
//! never-less-private round-down contract are untouched. With
//! [`ServiceConfig::budget`] `None` (the default) the accountant is
//! absent and the serving path is bit-identical to the unaccounted
//! service (pinned by test).
//!
//! [`ServiceConfig::budget`]: super::ServiceConfig::budget
//! [`Response::BudgetExhausted`]: super::Response::BudgetExhausted
//! [`MechKey`]: super::ladder::MechKey

use std::collections::HashMap;

use crate::WorkerId;

/// Per-vehicle trace-budget accounting for continuous serving
/// ([`ServiceConfig::budget`]).
///
/// The ledger charges every *served* report's canonical ε against the
/// vehicle's `trace_budget`; refusals and rejections charge nothing.
/// Past the `throttle_start` fill fraction, grants shrink linearly —
/// at fill `f ≥ throttle_start` a request for ε is granted at most
/// `ε · (1 − f) / (1 − throttle_start)` — reaching zero as the ledger
/// fills, so a vehicle degrades gracefully (more noise per report)
/// instead of falling off a cliff.
///
/// # Example
///
/// ```
/// use platform::TraceBudgetConfig;
///
/// let cfg = TraceBudgetConfig { trace_budget: 10.0, throttle_start: 0.5 };
/// // Below the knee, requests pass through untouched.
/// assert_eq!(cfg.throttled(5.0, 0.0), 5.0);
/// // At 75% fill with a 50% knee, grants are halved.
/// assert_eq!(cfg.throttled(5.0, 7.5), 2.5);
/// // A full ledger grants nothing.
/// assert_eq!(cfg.throttled(5.0, 10.0), 0.0);
/// ```
///
/// [`ServiceConfig::budget`]: super::ServiceConfig::budget
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceBudgetConfig {
    /// Total ε a single vehicle may be served across its trace — the
    /// linear-composition bound on what the whole report sequence
    /// reveals. Must be at least one ε-bucket width (or the first
    /// report already refuses); `f64::INFINITY` disables throttling
    /// and refusal while keeping the ledger's accounting.
    pub trace_budget: f64,
    /// Ledger fill fraction (`spent / trace_budget`, in `[0, 1)`) at
    /// which ε-throttling starts. Below it requests are granted as
    /// asked; above it grants shrink linearly to zero at full.
    pub throttle_start: f64,
}

impl Default for TraceBudgetConfig {
    fn default() -> Self {
        Self {
            trace_budget: 20.0,
            throttle_start: 0.5,
        }
    }
}

impl TraceBudgetConfig {
    /// The most ε a vehicle that has already `spent` may be granted
    /// for its next report, before flooring to the bucket grid: the
    /// linear throttle above the knee, capped by what remains in the
    /// budget. Monotone non-increasing in `spent`.
    pub fn throttled(&self, requested: f64, spent: f64) -> f64 {
        let remaining = (self.trace_budget - spent).max(0.0);
        if !self.trace_budget.is_finite() {
            return requested;
        }
        let fill = spent / self.trace_budget;
        let scale = if fill >= self.throttle_start {
            // Linear descent from 1 at the knee to 0 at a full ledger.
            ((1.0 - fill) / (1.0 - self.throttle_start)).max(0.0)
        } else {
            1.0
        };
        (requested * scale).min(remaining)
    }

    /// Panics unless the configuration is serviceable: a positive
    /// budget of at least one `bucket_width` (so the first report can
    /// be granted at all) and a throttle knee strictly inside `[0, 1)`.
    pub(crate) fn validate(&self, bucket_width: f64) {
        assert!(
            self.trace_budget >= bucket_width,
            "trace budget {} is below one epsilon bucket width {bucket_width}; \
             no report could ever be served",
            self.trace_budget
        );
        assert!(
            (0.0..1.0).contains(&self.throttle_start),
            "throttle_start {} must lie in [0, 1)",
            self.throttle_start
        );
    }
}

/// VA-GI-style velocity-aware ε adaptation: scale each report's ε by
/// the vehicle's estimated speed, so fast segments (whose reports are
/// geographically sparse anyway) spend less of the trace budget and
/// dwelling segments (the privacy-critical ones — homes, workplaces)
/// keep the full base ε.
///
/// The adapter returns raw ε values in `[min_epsilon, base_epsilon]`;
/// the service floors them onto its ε-bucket grid on submission, so
/// the reachable bucket universe stays finite and cache keying works
/// unchanged.
///
/// # Example
///
/// ```
/// use platform::VelocityEpsilon;
///
/// let va = VelocityEpsilon { base_epsilon: 5.0, min_epsilon: 1.0, v_ref_kmh: 30.0 };
/// // A dwelling vehicle keeps the full base ε.
/// assert_eq!(va.epsilon_for(0.0), 5.0);
/// // Faster means coarser: ε decreases monotonically with speed …
/// assert!(va.epsilon_for(60.0) < va.epsilon_for(15.0));
/// // … down to the clamp floor.
/// assert_eq!(va.epsilon_for(1e12), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VelocityEpsilon {
    /// ε granted to a stationary (dwelling) vehicle — the strongest
    /// utility the adapter ever requests.
    pub base_epsilon: f64,
    /// Clamp floor: no report requests less than this, however fast
    /// the vehicle moves. Must be at least one service ε-bucket width
    /// to be servable.
    pub min_epsilon: f64,
    /// Reference speed (km/h) of the hyperbolic roll-off: at `v_ref`
    /// the adapted ε is half the base, at `2·v_ref` a third, and so
    /// on. City traffic averages 20–40 km/h.
    pub v_ref_kmh: f64,
}

impl Default for VelocityEpsilon {
    fn default() -> Self {
        Self {
            base_epsilon: 5.0,
            min_epsilon: 1.0,
            v_ref_kmh: 30.0,
        }
    }
}

impl VelocityEpsilon {
    /// The adapted per-report ε for a vehicle moving at `speed_kmh`:
    /// `base · v_ref / (v_ref + speed)`, clamped to `min_epsilon`.
    /// Negative or non-finite speed estimates (GPS glitches) are
    /// treated as dwelling.
    ///
    /// # Panics
    ///
    /// Panics if the adapter is degenerate: non-positive `v_ref_kmh`,
    /// or `min_epsilon` outside `(0, base_epsilon]`.
    pub fn epsilon_for(&self, speed_kmh: f64) -> f64 {
        assert!(self.v_ref_kmh > 0.0, "reference speed must be positive");
        assert!(
            self.min_epsilon > 0.0 && self.min_epsilon <= self.base_epsilon,
            "clamp floor must lie in (0, base_epsilon]"
        );
        let speed = if speed_kmh.is_finite() && speed_kmh > 0.0 {
            speed_kmh
        } else {
            0.0
        };
        let adapted = self.base_epsilon * self.v_ref_kmh / (self.v_ref_kmh + speed);
        adapted.max(self.min_epsilon)
    }
}

/// The accountant's verdict on one report, before any serving work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Admission {
    /// Serve at `epsilon` (already floored to the bucket grid and
    /// reserved against the vehicle's ledger — release on a
    /// non-served outcome, commit on a serve). `throttled` marks a
    /// grant strictly below what the raw request would have bucketed
    /// to.
    Granted { epsilon: f64, throttled: bool },
    /// The grant fell below one bucket width; nothing is served and
    /// nothing was reserved. `remaining` is the unspent budget.
    Refused { remaining: f64 },
}

/// Delta counters for the `service.trace.*` metric family, accumulated
/// under the ledger lock and flushed to the `vlp-obs` registry on
/// `tick`/`flush_metrics` — same discipline as the per-shard
/// `ShardStats`, so the hot path never touches the registry mutex.
#[derive(Debug, Default)]
pub(crate) struct TraceStats {
    /// Served reports charged against a ledger.
    pub(crate) charges: u64,
    /// Charged reports served at a throttled (shrunken) ε.
    pub(crate) throttled: u64,
    /// Reports refused because the grant fell below one bucket width.
    pub(crate) refusals: u64,
    /// Vehicles that crossed into terminal exhaustion (remaining
    /// budget below one bucket width); counted once per vehicle.
    pub(crate) exhausted: u64,
}

impl TraceStats {
    pub(crate) fn flush(&mut self, obs: &vlp_obs::Registry) {
        use super::metrics;
        let pairs = [
            (metrics::TRACE_CHARGES, self.charges),
            (metrics::TRACE_THROTTLED, self.throttled),
            (metrics::TRACE_REFUSALS, self.refusals),
            (metrics::TRACE_EXHAUSTED, self.exhausted),
        ];
        for (name, value) in pairs {
            if value > 0 {
                obs.incr(name, value);
            }
        }
        *self = TraceStats::default();
    }
}

/// The per-vehicle ε-composition ledger behind
/// [`ServiceConfig::budget`]: spent ε per [`WorkerId`], plus the
/// accountant's delta counters. Lives behind one `Mutex` in the
/// serving core; present only when accounting is enabled, so the
/// disabled path takes no lock at all.
///
/// [`ServiceConfig::budget`]: super::ServiceConfig::budget
#[derive(Debug)]
pub(crate) struct TraceLedger {
    config: TraceBudgetConfig,
    spent: HashMap<WorkerId, f64>,
    /// Vehicles already counted as terminally exhausted.
    exhausted: std::collections::HashSet<WorkerId>,
    pub(crate) stats: TraceStats,
}

impl TraceLedger {
    pub(crate) fn new(config: TraceBudgetConfig) -> Self {
        Self {
            config,
            spent: HashMap::new(),
            exhausted: std::collections::HashSet::new(),
            stats: TraceStats::default(),
        }
    }

    /// Floors `epsilon` onto the bucket grid — the same round-down
    /// (never less private) the serving core applies, with the same
    /// nudge keeping exact multiples out of the bucket below.
    fn floor_to_grid(epsilon: f64, width: f64) -> f64 {
        (epsilon / width + 1e-9).floor() * width
    }

    /// Admits or refuses one report for `worker` requesting
    /// `requested` ε, against a service bucket grid of `width`. A
    /// granted ε is already canonical (grid-floored) and is
    /// *reserved* — the caller must [`TraceLedger::release`] it if the
    /// report ends unserved, or [`TraceLedger::commit`] it once served,
    /// so the ledger never under-counts what was actually revealed.
    pub(crate) fn admit(&mut self, worker: WorkerId, requested: f64, width: f64) -> Admission {
        let spent = self.spent.get(&worker).copied().unwrap_or(0.0);
        let raw = self.config.throttled(requested, spent);
        let granted = Self::floor_to_grid(raw, width);
        if granted < width {
            self.stats.refusals += 1;
            let remaining = (self.config.trace_budget - spent).max(0.0);
            if remaining < width && self.exhausted.insert(worker) {
                // Terminal: the budget itself (not just the throttle)
                // can no longer cover a single bucket. Every later
                // report for this vehicle refuses too.
                self.stats.exhausted += 1;
            }
            return Admission::Refused { remaining };
        }
        self.spent.insert(worker, spent + granted);
        Admission::Granted {
            epsilon: granted,
            throttled: granted + 1e-12 < Self::floor_to_grid(requested, width),
        }
    }

    /// Returns a reserved-but-unserved grant to the vehicle's budget
    /// (the report was rejected by admission control downstream — it
    /// revealed nothing).
    pub(crate) fn release(&mut self, worker: WorkerId, epsilon: f64) {
        if let Some(spent) = self.spent.get_mut(&worker) {
            *spent = (*spent - epsilon).max(0.0);
        }
    }

    /// Finalizes a reserved grant once the report was actually served.
    pub(crate) fn commit(&mut self, throttled: bool) {
        self.stats.charges += 1;
        if throttled {
            self.stats.throttled += 1;
        }
    }

    /// Cumulative ε charged (or currently reserved) for `worker`.
    pub(crate) fn spent(&self, worker: WorkerId) -> f64 {
        self.spent.get(&worker).copied().unwrap_or(0.0)
    }

    /// The ledger as a sorted `(vehicle, spent ε)` list.
    pub(crate) fn entries(&self) -> Vec<(WorkerId, f64)> {
        let mut out: Vec<(WorkerId, f64)> = self.spent.iter().map(|(&w, &e)| (w, e)).collect();
        out.sort_by_key(|&(w, _)| w.0);
        out
    }

    /// Mean ledger fill fraction across vehicles with any spend —
    /// the `service.trace.fill` health series. `0` for an idle ledger
    /// or an infinite budget.
    pub(crate) fn mean_fill(&self) -> f64 {
        if self.spent.is_empty() || !self.config.trace_budget.is_finite() {
            return 0.0;
        }
        let total: f64 = self
            .spent
            .values()
            .map(|&e| (e / self.config.trace_budget).min(1.0))
            .sum();
        total / self.spent.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: f64 = 0.25;

    fn ledger(budget: f64, knee: f64) -> TraceLedger {
        TraceLedger::new(TraceBudgetConfig {
            trace_budget: budget,
            throttle_start: knee,
        })
    }

    #[test]
    fn grants_pass_through_below_the_knee() {
        let mut l = ledger(10.0, 0.5);
        match l.admit(WorkerId(0), 2.0, W) {
            Admission::Granted { epsilon, throttled } => {
                assert_eq!(epsilon, 2.0);
                assert!(!throttled);
            }
            other => panic!("expected a grant, got {other:?}"),
        }
        assert_eq!(l.spent(WorkerId(0)), 2.0);
    }

    #[test]
    fn throttle_shrinks_grants_monotonically() {
        let cfg = TraceBudgetConfig {
            trace_budget: 10.0,
            throttle_start: 0.4,
        };
        let mut last = f64::INFINITY;
        for step in 0..=10 {
            let spent = step as f64;
            let g = cfg.throttled(5.0, spent);
            assert!(g <= last + 1e-12, "throttle must be monotone in spend");
            assert!(g <= 10.0 - spent + 1e-12, "never grant past the budget");
            last = g;
        }
        assert_eq!(cfg.throttled(5.0, 10.0), 0.0);
    }

    #[test]
    fn cumulative_grants_never_exceed_the_budget() {
        let mut l = ledger(3.0, 0.0);
        let mut total = 0.0;
        for _ in 0..100 {
            match l.admit(WorkerId(7), 5.0, W) {
                Admission::Granted { epsilon, .. } => {
                    l.commit(false);
                    total += epsilon;
                }
                Admission::Refused { .. } => break,
            }
        }
        assert!(total <= 3.0 + 1e-9, "overspent: {total}");
        assert_eq!(total, l.spent(WorkerId(7)));
    }

    #[test]
    fn refusal_below_one_bucket_width_is_terminal() {
        let mut l = ledger(1.0, 0.0);
        // Drain the budget.
        loop {
            if let Admission::Refused { remaining } = l.admit(WorkerId(1), 8.0, W) {
                assert!(remaining < W);
                break;
            }
        }
        // Exhaustion counted once, and every later admit refuses.
        assert_eq!(l.stats.exhausted, 1);
        for _ in 0..5 {
            assert!(matches!(
                l.admit(WorkerId(1), 100.0, W),
                Admission::Refused { .. }
            ));
        }
        assert_eq!(l.stats.exhausted, 1, "terminal exhaustion counts once");
    }

    #[test]
    fn release_returns_a_reservation() {
        let mut l = ledger(2.0, 0.0);
        let Admission::Granted { epsilon, .. } = l.admit(WorkerId(3), 1.0, W) else {
            panic!("expected a grant");
        };
        l.release(WorkerId(3), epsilon);
        assert_eq!(l.spent(WorkerId(3)), 0.0);
    }

    #[test]
    fn infinite_budget_never_throttles_or_refuses() {
        let mut l = ledger(f64::INFINITY, 0.5);
        for _ in 0..50 {
            match l.admit(WorkerId(2), 5.0, W) {
                Admission::Granted { epsilon, throttled } => {
                    assert_eq!(epsilon, 5.0);
                    assert!(!throttled);
                }
                other => panic!("infinite budget refused: {other:?}"),
            }
        }
        assert_eq!(l.mean_fill(), 0.0);
    }

    #[test]
    fn ledger_entries_are_sorted_and_fill_is_mean() {
        let mut l = ledger(4.0, 0.9);
        let _ = l.admit(WorkerId(9), 1.0, W);
        let _ = l.admit(WorkerId(2), 3.0, W);
        assert_eq!(l.entries(), vec![(WorkerId(2), 3.0), (WorkerId(9), 1.0)]);
        assert!((l.mean_fill() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn velocity_adapter_is_monotone_and_clamped() {
        let va = VelocityEpsilon::default();
        let mut last = f64::INFINITY;
        for v in [0.0, 10.0, 30.0, 60.0, 120.0, 1e6] {
            let e = va.epsilon_for(v);
            assert!(e <= last);
            assert!(e >= va.min_epsilon && e <= va.base_epsilon);
            last = e;
        }
        assert_eq!(va.epsilon_for(f64::NAN), va.base_epsilon);
        assert_eq!(va.epsilon_for(-5.0), va.base_epsilon);
        assert_eq!(va.epsilon_for(va.v_ref_kmh), va.base_epsilon / 2.0);
    }

    #[test]
    #[should_panic(expected = "below one epsilon bucket width")]
    fn validate_rejects_unservable_budget() {
        TraceBudgetConfig {
            trace_budget: 0.1,
            throttle_start: 0.0,
        }
        .validate(W);
    }
}
