//! Multi-vehicle spatial task assignment.
//!
//! The paper's Fig. 14 experiment deploys tasks and vehicles over the
//! map and lets the server assign each task to a vehicle using
//! *estimated* travel costs (computed from obfuscated locations); the
//! measured outcome is the *true* total travel distance. This crate
//! provides the matching machinery:
//!
//! * [`hungarian`] — exact minimum-cost bipartite matching
//!   (Jonker-Volgenant style shortest augmenting paths with potentials,
//!   `O(n²m)`);
//! * [`greedy`] — the nearest-available heuristic, for contrast.
//!
//! Both accept rectangular cost matrices: every row (task) gets exactly
//! one distinct column (vehicle) when `rows ≤ cols`; extra vehicles
//! stay idle.
//!
//! # Example
//!
//! ```
//! // Two tasks, two vehicles: greedy grabs the global cheapest cell
//! // first and gets stuck; Hungarian finds the cheaper matching.
//! let cost = vec![vec![1.0, 2.0], vec![1.5, 9.0]];
//! let exact = assignment::hungarian(&cost)?;
//! assert_eq!(exact.pairs, vec![1, 0]); // task 0 → vehicle 1, task 1 → vehicle 0
//! assert_eq!(exact.total_cost(&cost), 3.5);
//! let heuristic = assignment::greedy(&cost)?;
//! assert!(heuristic.total_cost(&cost) >= exact.total_cost(&cost));
//! # Ok::<(), assignment::AssignError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;

/// An assignment of rows to columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// `pairs[r] = c`: row `r` is assigned column `c`.
    pub pairs: Vec<usize>,
}

impl Assignment {
    /// Total cost of this assignment under `cost`.
    ///
    /// # Panics
    ///
    /// Panics if the assignment indexes outside `cost`.
    pub fn total_cost(&self, cost: &[Vec<f64>]) -> f64 {
        self.pairs
            .iter()
            .enumerate()
            .map(|(r, &c)| cost[r][c])
            .sum()
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assignment of {} rows", self.pairs.len())?;
        Ok(())
    }
}

/// Error for malformed assignment inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AssignError {
    /// The cost matrix was empty or ragged.
    MalformedMatrix,
    /// More rows than columns: some row could not be assigned.
    TooFewColumns {
        /// Number of rows (tasks).
        rows: usize,
        /// Number of columns (vehicles).
        cols: usize,
    },
    /// A cost entry was NaN or −∞.
    NonFiniteCost,
}

impl fmt::Display for AssignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignError::MalformedMatrix => write!(f, "cost matrix is empty or ragged"),
            AssignError::TooFewColumns { rows, cols } => {
                write!(f, "cannot assign {rows} rows to only {cols} columns")
            }
            AssignError::NonFiniteCost => write!(f, "cost matrix contains NaN or -inf"),
        }
    }
}

impl std::error::Error for AssignError {}

fn validate(cost: &[Vec<f64>]) -> Result<(usize, usize), AssignError> {
    let n = cost.len();
    if n == 0 {
        return Err(AssignError::MalformedMatrix);
    }
    let m = cost[0].len();
    if m == 0 || cost.iter().any(|r| r.len() != m) {
        return Err(AssignError::MalformedMatrix);
    }
    if n > m {
        return Err(AssignError::TooFewColumns { rows: n, cols: m });
    }
    if cost
        .iter()
        .flatten()
        .any(|v| v.is_nan() || *v == f64::NEG_INFINITY)
    {
        return Err(AssignError::NonFiniteCost);
    }
    Ok((n, m))
}

/// Exact minimum-cost assignment (Hungarian algorithm with potentials).
///
/// `cost[r][c]` is the cost of serving row `r` with column `c`
/// (`+∞` entries mark forbidden pairs). Requires `rows ≤ cols`.
///
/// # Errors
///
/// See [`AssignError`].
///
/// # Example
///
/// ```
/// let cost = vec![vec![4.0, 1.0, 3.0], vec![2.0, 0.0, 5.0]];
/// let a = assignment::hungarian(&cost)?;
/// assert_eq!(a.total_cost(&cost), 3.0); // row0→col2? no: row0→col1(1)+row1→col0(2)
/// # Ok::<(), assignment::AssignError>(())
/// ```
pub fn hungarian(cost: &[Vec<f64>]) -> Result<Assignment, AssignError> {
    let (n, m) = validate(cost)?;
    // 1-indexed Jonker-Volgenant with row/column potentials.
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j]: row matched to column j
    let mut way = vec![0usize; m + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            if !delta.is_finite() {
                // Every remaining column is forbidden; with rows ≤ cols
                // and finite costs this cannot happen unless the caller
                // used +∞ to forbid too much.
                return Err(AssignError::TooFewColumns { rows: n, cols: m });
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut pairs = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            pairs[p[j] - 1] = j - 1;
        }
    }
    debug_assert!(pairs.iter().all(|&c| c != usize::MAX));
    Ok(Assignment { pairs })
}

/// Greedy nearest-available matching: repeatedly assigns the globally
/// cheapest unmatched (row, column) pair. `O(n·m·min(n,m))`, no
/// optimality guarantee — included as the natural heuristic a naive
/// server would use.
///
/// # Errors
///
/// See [`AssignError`].
pub fn greedy(cost: &[Vec<f64>]) -> Result<Assignment, AssignError> {
    let (n, m) = validate(cost)?;
    let mut row_done = vec![false; n];
    let mut col_done = vec![false; m];
    let mut pairs = vec![usize::MAX; n];
    for _ in 0..n {
        let mut best = (f64::INFINITY, usize::MAX, usize::MAX);
        for (r, row) in cost.iter().enumerate() {
            if row_done[r] {
                continue;
            }
            for (c, &v) in row.iter().enumerate() {
                if !col_done[c] && v < best.0 {
                    best = (v, r, c);
                }
            }
        }
        if best.1 == usize::MAX {
            return Err(AssignError::TooFewColumns { rows: n, cols: m });
        }
        row_done[best.1] = true;
        col_done[best.2] = true;
        pairs[best.1] = best.2;
    }
    Ok(Assignment { pairs })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        // Try every injective row→column mapping.
        let n = cost.len();
        let m = cost[0].len();
        let mut cols: Vec<usize> = (0..m).collect();
        let mut best = f64::INFINITY;
        permute(&mut cols, 0, n, &mut |perm| {
            let total: f64 = (0..n).map(|r| cost[r][perm[r]]).sum();
            if total < best {
                best = total;
            }
        });
        best
    }

    fn permute(cols: &mut Vec<usize>, k: usize, n: usize, f: &mut impl FnMut(&[usize])) {
        if k == n {
            f(cols);
            return;
        }
        for i in k..cols.len() {
            cols.swap(k, i);
            permute(cols, k + 1, n, f);
            cols.swap(k, i);
        }
    }

    #[test]
    fn square_known_instance() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = hungarian(&cost).unwrap();
        assert_eq!(a.total_cost(&cost), 5.0);
        // Assignment is a permutation.
        let mut seen = [false; 3];
        for &c in &a.pairs {
            assert!(!seen[c]);
            seen[c] = true;
        }
    }

    #[test]
    fn rectangular_uses_best_columns() {
        let cost = vec![vec![10.0, 1.0, 8.0, 2.0], vec![7.0, 6.0, 0.5, 9.0]];
        let a = hungarian(&cost).unwrap();
        assert_eq!(a.total_cost(&cost), 1.5);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        for trial in 0..30 {
            let n = rng.random_range(1..5usize);
            let m = rng.random_range(n..6usize);
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.random_range(0.0..10.0f64)).collect())
                .collect();
            let a = hungarian(&cost).unwrap();
            let want = brute_force(&cost);
            assert!(
                (a.total_cost(&cost) - want).abs() < 1e-9,
                "trial {trial}: hungarian {} vs brute {want}",
                a.total_cost(&cost)
            );
        }
    }

    #[test]
    fn greedy_is_never_better_than_hungarian() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let n = rng.random_range(2..6usize);
            let m = rng.random_range(n..8usize);
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.random_range(0.0..5.0f64)).collect())
                .collect();
            let h = hungarian(&cost).unwrap().total_cost(&cost);
            let g = greedy(&cost).unwrap().total_cost(&cost);
            assert!(h <= g + 1e-9, "greedy {g} beat hungarian {h}");
        }
    }

    #[test]
    fn greedy_counterexample_exists() {
        // Classic: greedy takes the 0 and pays 10; optimal pays 1+1.
        let cost = vec![vec![0.0, 1.0], vec![1.0, 10.0]];
        let g = greedy(&cost).unwrap().total_cost(&cost);
        let h = hungarian(&cost).unwrap().total_cost(&cost);
        assert_eq!(g, 10.0);
        assert_eq!(h, 2.0);
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(hungarian(&[]), Err(AssignError::MalformedMatrix)));
        assert!(matches!(
            hungarian(&[vec![1.0], vec![]]),
            Err(AssignError::MalformedMatrix)
        ));
        assert!(matches!(
            hungarian(&[vec![1.0], vec![2.0], vec![3.0]][..1 + 2]),
            Err(AssignError::TooFewColumns { .. })
        ));
        assert!(matches!(
            hungarian(&[vec![f64::NAN]]),
            Err(AssignError::NonFiniteCost)
        ));
    }

    #[test]
    fn forbidden_pairs_via_infinity() {
        let inf = f64::INFINITY;
        let cost = vec![vec![inf, 1.0], vec![2.0, inf]];
        let a = hungarian(&cost).unwrap();
        assert_eq!(a.pairs, vec![1, 0]);
    }

    #[test]
    fn single_cell() {
        let cost = vec![vec![3.5]];
        let a = hungarian(&cost).unwrap();
        assert_eq!(a.pairs, vec![0]);
        assert_eq!(a.total_cost(&cost), 3.5);
    }
}
