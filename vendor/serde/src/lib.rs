//! Offline vendored stand-in for the `serde` crate.
//!
//! The build environment has no crates registry, so this crate
//! implements the narrow (de)serialization contract the VLP workspace
//! needs: plain structs with JSON-representable fields, derived via the
//! companion `serde_derive` stand-in and rendered by the vendored
//! `serde_json`.
//!
//! Instead of real serde's visitor architecture, both traits go through
//! one concrete intermediate representation, [`Content`] — an owned,
//! JSON-shaped tree. This costs an intermediate allocation per value
//! (irrelevant at this workspace's serialization volumes) and buys a
//! drastically smaller, fully offline implementation whose derive macro
//! needs no `syn`/`quote`.
//!
//! Supported shapes: every primitive the workspace serializes, `String`,
//! `Option<T>`, `Vec<T>`, fixed-size arrays, tuples up to arity 4, and
//! `#[derive(Serialize, Deserialize)]` on named-field and tuple structs
//! (newtypes serialize transparently, as with real serde).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The intermediate data model: an owned JSON-shaped tree.
///
/// Integers keep their signedness (`I64`/`U64`) so that round-trips of
/// `usize`/`u64` values above `i64::MAX` stay exact, mirroring
/// `serde_json`'s arbitrary-precision-free default behaviour.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Content>),
    /// JSON object, in field order.
    Map(Vec<(String, Content)>),
}

/// Deserialization failure: a human-readable description of the first
/// mismatch between the data and the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A value that can be rendered into the [`Content`] data model.
pub trait Serialize {
    /// Converts `self` into the intermediate representation.
    fn to_content(&self) -> Content;
}

/// A value that can be rebuilt from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds a value, reporting the first structural mismatch.
    ///
    /// # Errors
    ///
    /// [`DeError`] when `content` does not have the expected shape.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Looks up a struct field by name in a deserialized map and converts
/// it; used by the derive-generated code.
///
/// # Errors
///
/// [`DeError`] if the field is missing or its value mismatches `T`.
pub fn field<T: Deserialize>(map: &[(String, Content)], name: &str) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_content(v),
        None => Err(DeError::custom(format!("missing field `{name}`"))),
    }
}

// --- impls for primitives -------------------------------------------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = match *content {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    _ => {
                        return Err(DeError::custom(concat!(
                            "expected unsigned integer for ",
                            stringify!($t)
                        )))
                    }
                };
                <$t>::try_from(v).map_err(|_| {
                    DeError::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = match *content {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v).map_err(|_| {
                        DeError::custom(concat!("integer out of range for ", stringify!($t)))
                    })?,
                    _ => {
                        return Err(DeError::custom(concat!(
                            "expected integer for ",
                            stringify!($t)
                        )))
                    }
                };
                <$t>::try_from(v).map_err(|_| {
                    DeError::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match *content {
            Content::F64(v) => Ok(v),
            Content::I64(v) => Ok(v as f64),
            Content::U64(v) => Ok(v as f64),
            _ => Err(DeError::custom("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match *content {
            Content::Bool(b) => Ok(b),
            _ => Err(DeError::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::custom("expected array")),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::Seq(items) if items.len() == [$($n),+].len() => {
                        Ok(($($t::from_content(&items[$n])?,)+))
                    }
                    _ => Err(DeError::custom("expected tuple-length array")),
                }
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i32::from_content(&(-7i32).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(bool::from_content(&true.to_content()).unwrap(), true);
        let s = "héllo\"quote".to_string();
        assert_eq!(String::from_content(&s.to_content()).unwrap(), s);
    }

    #[test]
    fn cross_signedness_integers() {
        assert_eq!(usize::from_content(&Content::I64(5)).unwrap(), 5);
        assert!(usize::from_content(&Content::I64(-5)).is_err());
        assert_eq!(i64::from_content(&Content::U64(5)).unwrap(), 5);
        assert!(i64::from_content(&Content::U64(u64::MAX)).is_err());
    }

    #[test]
    fn vec_and_option_round_trip() {
        let v = vec![1.0f64, 2.5, -3.25];
        assert_eq!(Vec::<f64>::from_content(&v.to_content()).unwrap(), v);
        let some = Some(3u32);
        let none: Option<u32> = None;
        assert_eq!(
            Option::<u32>::from_content(&some.to_content()).unwrap(),
            some
        );
        assert_eq!(
            Option::<u32>::from_content(&none.to_content()).unwrap(),
            none
        );
    }

    #[test]
    fn missing_field_reports_name() {
        let map = vec![("a".to_string(), Content::U64(1))];
        let err = field::<u64>(&map, "b").unwrap_err();
        assert!(err.to_string().contains("`b`"));
    }
}
