//! Offline vendored stand-in for the `serde_json` crate.
//!
//! Implements the subset of the real API the VLP workspace uses, over
//! the vendored serde's [`Content`] data model:
//!
//! * [`Value`] / [`Map`] / [`Number`] with the usual accessors;
//! * [`from_str`] / [`from_slice`] / [`from_reader`] (full JSON parser:
//!   escapes, `\u` surrogate pairs, integer-vs-float detection);
//! * [`to_string`] / [`to_string_pretty`] / [`to_vec`] / [`to_writer`]
//!   / [`to_writer_pretty`] (floats print their shortest round-trip
//!   form; non-finite floats print `null`, as in real serde_json);
//! * the [`json!`] macro. One deliberate restriction: interpolated
//!   expressions must be a single token tree — wrap anything more
//!   complex in parentheses, e.g. `json!({"x": (a + b)})`.
//!
//! Object keys are kept in sorted order (the real crate's default
//! BTreeMap behaviour), so serialized output is deterministic — which
//! the workspace's benchmark artifacts rely on for diffing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};

use serde::{Content, DeError, Deserialize, Serialize};

mod de;
mod ser;

pub use de::parse_content;

/// A JSON number: signed, unsigned, or floating point.
#[derive(Debug, Clone, PartialEq)]
pub struct Number(N);

#[derive(Debug, Clone, PartialEq)]
enum N {
    /// Always negative: non-negative integers normalize to `U64` so
    /// that parsed and constructed numbers compare equal.
    I64(i64),
    U64(u64),
    F64(f64),
}

impl N {
    fn from_i64(v: i64) -> N {
        match u64::try_from(v) {
            Ok(u) => N::U64(u),
            Err(_) => N::I64(v),
        }
    }
}

impl Number {
    /// The value as `f64` (always possible, possibly lossy).
    pub fn as_f64(&self) -> f64 {
        match self.0 {
            N::I64(v) => v as f64,
            N::U64(v) => v as f64,
            N::F64(v) => v,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::I64(v) => u64::try_from(v).ok(),
            N::U64(v) => Some(v),
            N::F64(_) => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::I64(v) => Some(v),
            N::U64(v) => i64::try_from(v).ok(),
            N::F64(_) => None,
        }
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Self {
        Number(N::U64(v))
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        Number(N::from_i64(v))
    }
}

impl From<f64> for Number {
    fn from(v: f64) -> Self {
        Number(N::F64(v))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::I64(v) => write!(f, "{v}"),
            N::U64(v) => write!(f, "{v}"),
            N::F64(v) => f.write_str(&ser::format_f64(v)),
        }
    }
}

/// A JSON object: string keys in sorted order (the real crate's default
/// `BTreeMap` representation).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    inner: BTreeMap<K, V>,
}

impl Map<String, Value> {
    /// Creates an empty object.
    pub fn new() -> Self {
        Self {
            inner: BTreeMap::new(),
        }
    }

    /// Inserts a key-value pair, returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.inner.insert(key, value)
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.inner.get(key)
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.inner.remove(key)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.inner.contains_key(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the object is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.inner.iter()
    }

    /// Iterates keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.inner.keys()
    }

    /// Iterates values in key order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.inner.values()
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Self {
            inner: iter.into_iter().collect(),
        }
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object.
    Object(Map<String, Value>),
}

impl Value {
    /// Member access: `value.get("key")` on objects, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64` if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64` if this is a non-negative integer `Number`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64` if this is an integer `Number`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The string slice if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The map if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The map, mutably, if this is an `Object`.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn from_content(content: Content) -> Value {
        match content {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(b),
            Content::I64(v) => Value::Number(Number(N::from_i64(v))),
            Content::U64(v) => Value::Number(Number(N::U64(v))),
            Content::F64(v) => Value::Number(Number(N::F64(v))),
            Content::Str(s) => Value::String(s),
            Content::Seq(items) => {
                Value::Array(items.into_iter().map(Value::from_content).collect())
            }
            Content::Map(entries) => Value::Object(
                entries
                    .into_iter()
                    .map(|(k, v)| (k, Value::from_content(v)))
                    .collect(),
            ),
        }
    }

    fn to_content_owned(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number(N::I64(v))) => Content::I64(*v),
            Value::Number(Number(N::U64(v))) => Content::U64(*v),
            Value::Number(Number(N::F64(v))) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => {
                Content::Seq(items.iter().map(Value::to_content_owned).collect())
            }
            Value::Object(map) => Content::Map(
                map.iter()
                    .map(|(k, v)| (k.clone(), v.to_content_owned()))
                    .collect(),
            ),
        }
    }
}

/// Shared `Null` returned when indexing misses, as in the real crate.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// `value["key"]` on objects; `Null` for missing keys or
    /// non-objects (matching real serde_json's read-only behaviour).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// `value[i]` on arrays; `Null` when out of bounds or not an array.
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        self.to_content_owned()
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(Value::from_content(content.clone()))
    }
}

impl fmt::Display for Value {
    /// Prints compact JSON (`{"a":1}`); use [`to_string_pretty`] for
    /// indented output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&ser::write_value(self, false))
    }
}

macro_rules! value_from {
    ($($t:ty => $variant:expr),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                #[allow(clippy::redundant_closure_call)]
                ($variant)(v)
            }
        }
    )*};
}

value_from! {
    bool => Value::Bool,
    f64 => |v| Value::Number(Number(N::F64(v))),
    f32 => |v: f32| Value::Number(Number(N::F64(f64::from(v)))),
    i64 => |v| Value::Number(Number(N::from_i64(v))),
    i32 => |v: i32| Value::Number(Number(N::from_i64(i64::from(v)))),
    u64 => |v| Value::Number(Number(N::U64(v))),
    u32 => |v: u32| Value::Number(Number(N::U64(u64::from(v)))),
    usize => |v: usize| Value::Number(Number(N::U64(v as u64))),
    String => Value::String,
    &str => |v: &str| Value::String(v.to_string()),
}

/// Error raised by any (de)serialization entry point.
pub struct Error {
    kind: ErrorKind,
}

enum ErrorKind {
    /// Syntax or shape error, with a 1-based line/column when known.
    Msg(String, Option<(usize, usize)>),
    Io(std::io::Error),
}

impl Error {
    pub(crate) fn msg(message: impl Into<String>) -> Self {
        Error {
            kind: ErrorKind::Msg(message.into(), None),
        }
    }

    pub(crate) fn at(message: impl Into<String>, line: usize, col: usize) -> Self {
        Error {
            kind: ErrorKind::Msg(message.into(), Some((line, col))),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ErrorKind::Msg(m, Some((line, col))) => {
                write!(f, "{m} at line {line} column {col}")
            }
            ErrorKind::Msg(m, None) => f.write_str(m),
            ErrorKind::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({self})")
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            ErrorKind::Io(e) => Some(e),
            ErrorKind::Msg(..) => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error {
            kind: ErrorKind::Io(e),
        }
    }
}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::msg(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    Value::from_content(value.to_content())
}

/// Deserializes `T` from a JSON string.
///
/// # Errors
///
/// Syntax errors (with position) and shape mismatches as [`Error`].
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = de::parse_content(s)?;
    Ok(T::from_content(&content)?)
}

/// Deserializes `T` from JSON bytes.
///
/// # Errors
///
/// Invalid UTF-8, syntax errors, and shape mismatches as [`Error`].
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Deserializes `T` from a reader (buffers the whole input first).
///
/// # Errors
///
/// I/O, UTF-8, syntax, and shape errors as [`Error`].
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    from_slice(&buf)
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for the supported data model; the `Result` mirrors the
/// real crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(ser::write_content(&value.to_content(), false))
}

/// Serializes `value` to an indented JSON string.
///
/// # Errors
///
/// Never fails for the supported data model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(ser::write_content(&value.to_content(), true))
}

/// Serializes `value` to compact JSON bytes.
///
/// # Errors
///
/// Never fails for the supported data model.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Writes `value` as compact JSON.
///
/// # Errors
///
/// I/O failures as [`Error`].
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Writes `value` as indented JSON.
///
/// # Errors
///
/// I/O failures as [`Error`].
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

/// Builds a [`Value`] from JSON-like syntax.
///
/// Interpolated Rust expressions must be a single token tree — wrap
/// anything larger in parentheses: `json!({"sum": (a + b)})`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(::std::string::String::from($key), $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = json!({
            "name": "vlp",
            "k": 12,
            "neg": (-3),
            "pi": 3.25,
            "flags": [true, false, null],
            "nested": {"a": [1.5, 2.5]}
        });
        let text = v.to_string();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        // Sorted keys make the output deterministic.
        assert!(text.find("\"flags\"").unwrap() < text.find("\"k\"").unwrap());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"a": 1, "b": [2, 3]});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_text_round_trips_exactly() {
        for &x in &[0.1f64, 1.0 / 3.0, 6.02e23, 5e-324, 1.0, -0.0] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" slash\\ newline\n tab\t unicode\u{1F600}\u{7}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        let back: String = from_str(r#""😀""#).unwrap();
        assert_eq!(back, "\u{1F600}");
    }

    #[test]
    fn syntax_errors_carry_position() {
        let err = from_str::<Value>("{\"a\": 1,\n  oops}").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn large_u64_survives() {
        let big = u64::MAX;
        let text = to_string(&big).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, big);
    }
}
