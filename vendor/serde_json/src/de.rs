//! Recursive-descent JSON parser producing [`Content`] trees.

use serde::Content;

use crate::Error;

/// Guards against stack exhaustion on deeply nested documents; real
/// serde_json defaults to 128 as well.
const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document (one value plus trailing
/// whitespace).
///
/// # Errors
///
/// [`Error`] with 1-based line/column on the first syntax error.
pub fn parse_content(input: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = 1 + consumed.iter().filter(|&&b| b == b'\n').count();
        let col = 1 + consumed.iter().rev().take_while(|&&b| b != b'\n').count();
        Error::at(message, line, col)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Content, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Content::Str),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'n') => self.literal("null", Content::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("expected value")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                } else {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.error("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is valid UTF-8 by
                    // construction of `&str`).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("input came from &str");
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut unit = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.error("bad \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("bad hex digit"))?;
            unit = unit * 16 + digit;
            self.pos += 1;
        }
        Ok(unit)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            // Integer literal beyond 64 bits: degrade to f64 like the
            // real crate does without arbitrary_precision.
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.error("invalid number"))
    }
}
