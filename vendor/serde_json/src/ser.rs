//! JSON text emission (compact and 2-space-indented pretty forms).

use serde::Content;

use crate::Value;

/// Shortest round-trip decimal text for a finite `f64`; non-finite
/// values print `null`, matching real serde_json.
pub(crate) fn format_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    // Rust's `{:?}` for floats is the shortest representation that
    // parses back to the same bits, and always includes a decimal
    // point or exponent (`1.0`, `5e-324`), which is valid JSON.
    format!("{v:?}")
}

pub(crate) fn write_value(v: &Value, pretty: bool) -> String {
    write_content(&v.to_content_owned(), pretty)
}

pub(crate) fn write_content(c: &Content, pretty: bool) -> String {
    let mut out = String::new();
    emit(c, pretty, 0, &mut out);
    out
}

fn emit(c: &Content, pretty: bool, indent: usize, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => out.push_str(&format_f64(*v)),
        Content::Str(s) => emit_string(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    newline(indent + 1, out);
                }
                emit(item, pretty, indent + 1, out);
            }
            if pretty {
                newline(indent, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    newline(indent + 1, out);
                }
                emit_string(key, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                emit(value, pretty, indent + 1, out);
            }
            if pretty {
                newline(indent, out);
            }
            out.push('}');
        }
    }
}

fn newline(indent: usize, out: &mut String) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
