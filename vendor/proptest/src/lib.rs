//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the subset of the real API the VLP workspace's property
//! tests use:
//!
//! * [`Strategy`] with `prop_map` and `boxed`;
//! * range strategies (`0usize..4`, `0.3f64..0.7`, …), tuples of
//!   strategies up to arity 4, [`collection::vec`] with exact or
//!   ranged sizes, [`any`] for primitives;
//! * the `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//!   and `prop_assume!` macros, plus [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: case generation is fully
//! deterministic (fixed base seed, no `PROPTEST_CASES` env handling,
//! no persisted failure regressions) and failing inputs are **not
//! shrunk** — the panic message reports the failing case index and the
//! values' `Debug` form instead.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Everything the property tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Run-level configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps offline CI fast while still
        // exercising the generators meaningfully.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert!`-style failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the input is outside the property's
    /// precondition and another input should be tried.
    Reject,
}

/// Result of one test-case execution.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic split-mix style generator driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x6A09_E667_F3BC_C909,
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 step.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at test-strategy scale.
        self.next_u64() % bound
    }
}

/// A generator of test inputs.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternative strategies; built by
/// `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full u64-width inclusive range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                let v = self.start + (self.end - self.start) * unit;
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_range_strategy!(f64, f32);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
}

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary: Debug + Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// The whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The strategy behind `any::<bool>()` and friends.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

macro_rules! arbitrary_impl {
    ($($t:ty => |$rng:ident| $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, $rng: &mut TestRng) -> $t {
                $gen
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

arbitrary_impl! {
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
    // Finite, sign-symmetric, moderate magnitude — useful default for
    // numeric properties without the NaN/inf edge cases `any` in real
    // proptest includes.
    f64 => |rng| (rng.unit_f64() - 0.5) * 2.0e6,
}

/// The whole-domain strategy for `T` (`any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification: an exact length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives one property over `config.cases` generated inputs.
///
/// `run_case` generates inputs from the per-case RNG and evaluates the
/// body, returning a `Debug` dump of the inputs alongside the result so
/// failures can be reported without shrinking.
#[doc(hidden)]
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    mut run_case: impl FnMut(&mut TestRng) -> (String, TestCaseResult),
) {
    // Fixed base seed: runs are reproducible across machines.
    const BASE_SEED: u64 = 0x005E_ED0F_1E1D;
    let mut rejected = 0u32;
    let mut case = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(1024);
    while case < config.cases {
        let mut rng = TestRng::new(BASE_SEED ^ ((u64::from(case) + u64::from(rejected)) << 1));
        let (inputs, outcome) = run_case(&mut rng);
        match outcome {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected < max_rejects,
                    "property `{name}`: too many prop_assume! rejections \
                     ({rejected}) after {case} accepted cases"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{name}` failed at case {case}: {msg}\n\
                     inputs: {inputs}"
                );
            }
        }
    }
}

/// Declares deterministic property tests over generated inputs.
///
/// Supports the real crate's block form, with an optional leading
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_property(stringify!($name), &config, |rng| {
                let __values = ($($crate::Strategy::generate(&($strat), rng),)+);
                let inputs = format!("{:?}", __values);
                let ($($arg,)+) = __values;
                let outcome: $crate::TestCaseResult = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                (inputs, outcome)
            });
        }
    )*};
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Rejects the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among alternative strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = (2usize..4).generate(&mut rng);
            assert!((2..4).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec((0.0f64..1.0, 0u64..9), 1..5);
        let a = strat.generate(&mut crate::TestRng::new(42));
        let b = strat.generate(&mut crate::TestRng::new(42));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_pipeline_works(
            xs in prop::collection::vec(-3.0f64..3.0, 2..6),
            flag in any::<bool>(),
            k in prop_oneof![1usize..3, 10usize..12],
        ) {
            prop_assume!(!xs.is_empty());
            prop_assert!(k < 12);
            let doubled: Vec<f64> = xs.iter().map(|v| v * 2.0).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            if flag {
                prop_assert!(xs.iter().all(|v| v.abs() <= 3.0));
            }
        }
    }
}
