//! Offline vendored stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's `harness = false` bench
//! binaries use — [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], `criterion_group!`, `criterion_main!` — as a plain
//! wall-clock timer: each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and prints min/mean/max per iteration.
//! There are no statistical comparisons, plots, or saved baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver; collects configuration and runs groups.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let sample_size = self.sample_size;
        run_benchmark(&id.into(), sample_size, f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
    }

    /// Ends the group (printing is immediate, so this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// A function/parameter benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id labelled `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    /// Per-sample iteration timings, filled by [`Bencher::iter`].
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, taking the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up run (also primes caches/allocations).
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{label:<50} [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group in either the struct-ish or positional
/// form the real crate accepts.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the `main` entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| n * n)
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = spin
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
