//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so this crate re-implements the *small, deterministic*
//! subset of the `rand` API the workspace actually uses:
//!
//! * [`rngs::StdRng`] — a seedable, portable PRNG (xoshiro256++ core
//!   seeded through SplitMix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`RngExt::random`] and [`RngExt::random_range`] for the integer
//!   and float types the workspace samples.
//!
//! It is **not** a cryptographic RNG and makes no statistical claims
//! beyond "good enough for reproducible simulations". The stream
//! produced by a given seed is stable forever: experiment outputs and
//! golden test values depend on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator with a 64-bit output word.
///
/// The single primitive every other method is derived from; kept
/// object-safe so `&mut dyn` generators work.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over their
    /// whole domain, `bool` fair).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R2: SampleRange<T>>(&mut self, range: R2) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Types samplable by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1) on the f64 grid.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling from `[0, bound)` by rejection
/// (Lemire-style widening multiply would do too; rejection keeps the
/// arithmetic obviously correct).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Rounding can land exactly on `end`; fold back inside.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let u: f64 = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f32 = f32::sample(rng);
        let v = self.start + u * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256++ with
    /// SplitMix64 seed expansion.
    ///
    /// Unlike the real `rand::rngs::StdRng` (which explicitly reserves
    /// the right to change algorithms), this vendored version is
    /// frozen: a seed's stream never changes across versions, which the
    /// workspace's golden artifacts rely on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expands the 64-bit seed into the full state;
            // it cannot produce the all-zero state xoshiro forbids.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_stay_inside() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(-0.05..0.05);
            assert!((-0.05..0.05).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5..5usize);
    }
}
