//! Offline vendored stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls targeting
//! the vendored serde's concrete [`Content`] data model. Because the
//! build environment has no crates registry, the derive input is parsed
//! by hand from the raw `proc_macro::TokenStream` instead of through
//! `syn`.
//!
//! Supported inputs — exactly the shapes the VLP workspace derives on:
//!
//! * named-field structs (`struct Foo { a: T, b: U }`) → JSON objects
//!   in field order;
//! * newtype structs (`struct Id(pub usize)`) → serialized
//!   transparently as the inner value, like real serde;
//! * other tuple structs → JSON arrays.
//!
//! Enums, unions, and generic structs produce a `compile_error!` so an
//! unsupported use fails loudly at the derive site rather than
//! serializing wrongly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a derive input.
enum Input {
    Named { name: String, fields: Vec<String> },
    Tuple { name: String, arity: usize },
}

/// Derives `serde::Serialize` for a plain struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` for a plain struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Input) -> String) -> TokenStream {
    let code = match parse(input) {
        Ok(parsed) => generate(&parsed),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse()
        .expect("serde_derive generated invalid Rust; this is a bug in the vendored derive")
}

/// Parses the struct name and field layout out of the derive input.
fn parse(input: TokenStream) -> Result<Input, String> {
    let mut tokens = input.into_iter().peekable();

    // Leading attributes (`#[...]`, including doc comments) and
    // visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.next() {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => {}
        Some(TokenTree::Ident(kw)) => {
            return Err(format!(
                "vendored serde_derive supports only structs, found `{kw}`"
            ))
        }
        other => return Err(format!("unexpected derive input near {other:?}")),
    }

    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected struct name, found {other:?}")),
    };

    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic struct `{name}`"
            ));
        }
    }

    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input::Named {
            fields: named_fields(g.stream())?,
            name,
        }),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Input::Tuple {
            arity: tuple_arity(g.stream()),
            name,
        }),
        other => Err(format!(
            "unsupported struct body for `{name}` near {other:?}"
        )),
    }
}

/// Extracts field names from a named-field body, skipping per-field
/// attributes, visibility, and type tokens (commas inside generic types
/// are recognized by angle-bracket depth).
fn named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(field) = tree else {
            return Err(format!("expected field name, found {tree:?}"));
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field, found {other:?}")),
        }
        fields.push(field.to_string());
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tree in tokens.by_ref() {
            match tree {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Counts the fields of a tuple-struct body (top-level comma-separated
/// type segments, tolerating a trailing comma).
fn tuple_arity(body: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut segment_has_tokens = false;
    let mut angle_depth = 0i32;
    for tree in body {
        match tree {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                segment_has_tokens = false;
                continue;
            }
            _ => {}
        }
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        arity += 1;
    }
    arity
}

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::Named { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_content(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Input::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                     ::serde::Serialize::to_content(&self.0)\n\
                 }}\n\
             }}"
        ),
        Input::Tuple { name, arity } => {
            let entries: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Seq(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::Named { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(map, {f:?})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match content {{\n\
                             ::serde::Content::Map(map) => \
                                 ::std::result::Result::Ok(Self {{ {entries} }}),\n\
                             _ => ::std::result::Result::Err(::serde::DeError::custom(\
                                 \"expected map for struct {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Input::Tuple { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_content(content: &::serde::Content) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok(Self(::serde::Deserialize::from_content(content)?))\n\
                 }}\n\
             }}"
        ),
        Input::Tuple { name, arity } => {
            let entries: String = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match content {{\n\
                             ::serde::Content::Seq(items) if items.len() == {arity} => \
                                 ::std::result::Result::Ok(Self({entries})),\n\
                             _ => ::std::result::Result::Err(::serde::DeError::custom(\
                                 \"expected {arity}-element array for struct {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
