//! The paper's headline qualitative claims, checked at test scale.
//!
//! Absolute numbers depend on the map and trace data (ours are
//! synthetic), but each claim's *direction* must reproduce. These are
//! the same checks the figure binaries print, pinned here so
//! `cargo test` guards them.

use adversary::bayes;
use vlp_bench::scenarios;
use vlp_core::baseline::laplace::planar_laplace;
use vlp_core::constraint_reduction::reduced_spec;
use vlp_core::{Mechanism, PrivacySpec};

fn small_instance() -> vlp_core::VlpInstance {
    let graph = scenarios::rome_graph();
    let traces = scenarios::fleet(&graph, 3, 250, 42);
    scenarios::cab_instance(&graph, 0.4, &traces[0], &traces)
}

/// §5.1 / Fig. 11: our road-metric mechanism beats the 2-D-plane
/// optimal mechanism on quality loss at equal ε.
#[test]
fn ours_beats_2db_on_quality_loss() {
    let inst = small_instance();
    let eps = 5.0;
    let (ours, _, _) = scenarios::solve_ours(&inst, eps, -1e-6);
    let twodb = scenarios::solve_2db(&inst, eps);
    let m_ours = scenarios::evaluate(&inst, &ours);
    let m_2db = scenarios::evaluate(&inst, &twodb);
    assert!(
        m_ours.etdd <= m_2db.etdd + 1e-9,
        "ours {} must not exceed 2Db {}",
        m_ours.etdd,
        m_2db.etdd
    );
}

/// Fig. 12(a): quality loss falls as ε grows.
#[test]
fn quality_loss_falls_with_epsilon() {
    let inst = small_instance();
    let losses: Vec<f64> = [1.0, 4.0, 10.0]
        .iter()
        .map(|&e| scenarios::solve_ours(&inst, e, scenarios::DEFAULT_XI).1)
        .collect();
    assert!(
        losses[0] >= losses[1] - 1e-6 && losses[1] >= losses[2] - 1e-6,
        "{losses:?}"
    );
}

/// Fig. 12(b): AdvError falls as ε grows (weaker privacy).
#[test]
fn adv_error_falls_with_epsilon() {
    let inst = small_instance();
    let adv: Vec<f64> = [1.0, 10.0]
        .iter()
        .map(|&e| {
            let (m, _, _) = scenarios::solve_ours(&inst, e, scenarios::DEFAULT_XI);
            scenarios::evaluate(&inst, &m).adv_error
        })
        .collect();
    assert!(adv[0] >= adv[1] - 1e-6, "{adv:?}");
}

/// Fig. 13(a): constraint reduction removes the overwhelming majority
/// of Geo-I rows while keeping the mechanism feasible for the full set.
#[test]
fn constraint_reduction_is_dramatic_and_sound() {
    let inst = small_instance();
    let k = inst.len();
    let full = PrivacySpec::full(&inst.aux, 5.0, f64::INFINITY);
    let red = reduced_spec(&inst.aux, 5.0, f64::INFINITY);
    // The reduction ratio is ~O(M/K²): asymptotically cubic→quadratic.
    // At test scale (small K) the saving is proportionally smaller, so
    // gate on the K-dependent bound rather than the paper's >99 %
    // (which our figure-scale runs do reach — see fig13_efficiency).
    let removed = 1.0 - red.lp_row_count(k) as f64 / full.lp_row_count(k) as f64;
    let expected = 1.0 - 8.0 / k as f64;
    assert!(
        removed > expected.max(0.5),
        "only removed {removed} (expected > {expected})"
    );
    let (mech, _, _) = scenarios::solve_ours(&inst, 5.0, scenarios::DEFAULT_XI);
    assert!(
        mech.max_violation(&full) <= 1e-5,
        "reduced solution violates full spec"
    );
}

/// Fig. 13(e): column generation is near-optimal against its own dual
/// bound.
#[test]
fn cg_is_near_optimal_vs_dual_bound() {
    let inst = small_instance();
    let (_, loss, diag) = scenarios::solve_ours(&inst, 5.0, -1e-9);
    let lb = diag.best_dual_bound();
    assert!(lb > 0.0, "dual bound should be positive at eps=5");
    let ratio = loss / lb;
    assert!(
        (1.0 - 1e-6..1.3).contains(&ratio),
        "approximation ratio {ratio}"
    );
}

/// Fig. 19: the downtown topology (Region B) is harder for the
/// adversary — AdvError is higher than in the rural Region A.
///
/// Note: the paper also reports higher *ETDD* downtown; under optimal
/// per-region mechanisms on our synthetic maps that direction does NOT
/// reproduce (dense 2-D grids offer near-equidistant obfuscation
/// alternatives that sparse rural topologies lack, so the optimizer
/// obfuscates downtown almost for free). The deviation and its analysis
/// are recorded in EXPERIMENTS.md; the privacy direction below is the
/// robust part of the claim.
#[test]
fn downtown_confuses_the_adversary_more_than_rural() {
    use mobility::{estimate_prior, generate_trace, TraceConfig};
    use vlp_core::Discretization;
    let mut adv = Vec::new();
    for (graph, delta) in [(scenarios::region_a(), 0.25), (scenarios::region_b(), 0.25)] {
        let disc = Discretization::new(&graph, delta);
        let cfg = TraceConfig {
            reports: 300,
            report_period_secs: 20.0,
            ..TraceConfig::default()
        };
        let drv = generate_trace(&graph, &cfg, 5);
        let f_p = estimate_prior(&graph, &disc, &[drv], 0.1).expect("on map");
        let tasks = scenarios::spread_tasks(disc.len(), 10.min(disc.len()));
        let inst = scenarios::instance_with_tasks(&graph, delta, f_p, &tasks);
        let (mech, _, _) = scenarios::solve_ours(&inst, 5.0, scenarios::DEFAULT_XI);
        adv.push(scenarios::evaluate(&inst, &mech).adv_error);
    }
    assert!(
        adv[1] > adv[0],
        "downtown {} must exceed rural {}",
        adv[1],
        adv[0]
    );
}

/// Related-work positioning: the optimized mechanism dominates the
/// unoptimized planar-Laplace baseline on quality at equal ε.
#[test]
fn optimized_mechanism_beats_planar_laplace() {
    let inst = small_instance();
    let eps = 3.0;
    let (ours, _, _) = scenarios::solve_ours(&inst, eps, scenarios::DEFAULT_XI);
    let lap = planar_laplace(&inst.graph, &inst.disc, eps);
    assert!(ours.quality_loss(&inst.cost) <= lap.quality_loss(&inst.cost) + 1e-9);
}

/// The identity mechanism is the no-privacy anchor: zero loss, zero
/// adversary error; the solved mechanism must sit strictly between the
/// anchors.
#[test]
fn solved_mechanism_sits_between_anchors() {
    let inst = small_instance();
    let (ours, loss, _) = scenarios::solve_ours(&inst, 3.0, scenarios::DEFAULT_XI);
    let id_adv = bayes::adv_error(
        &Mechanism::identity(inst.len()),
        &inst.f_p,
        &inst.interval_dists,
    );
    let our_adv = bayes::adv_error(&ours, &inst.f_p, &inst.interval_dists);
    assert!(id_adv.abs() < 1e-9);
    assert!(our_adv > 0.0, "privacy must cost the adversary something");
    assert!(loss > 0.0, "geo-I at eps=3 cannot be free");
}
