//! Integration tests for the sharded mechanism service's deadline
//! fallback: privacy is invariant across the fallback/optimal split,
//! and the cache converges to exactly the mechanisms a cold solve
//! produces.

use std::time::Duration;

use platform::{MechanismService, Served, ServiceConfig, WorkerId};
use rand::SeedableRng;
use roadnet::{generators, EdgeId, Location};
use vlp_core::{privacy, PrivacySpec};

const EPSILONS: [f64; 2] = [2.5, 5.0];

fn service() -> MechanismService {
    let graph = generators::grid(3, 4, 0.4, true);
    MechanismService::new(
        graph,
        ServiceConfig {
            n_shards: 2,
            delta: 0.2,
            solve_deadline: Duration::ZERO,
            ..ServiceConfig::default()
        },
    )
}

/// One request per (shard, ε) combination.
fn requests(svc: &MechanismService) -> Vec<(WorkerId, Location, f64)> {
    let graph = generators::grid(3, 4, 0.4, true);
    let mut per_shard: Vec<Option<Location>> = vec![None; svc.shard_count()];
    for e in 0..graph.edge_count() {
        let loc = Location::new(EdgeId(e), 0.1);
        if let Some((s, _)) = svc.partition().to_local(loc) {
            per_shard[s].get_or_insert(loc);
        }
    }
    let mut reqs = Vec::new();
    for (s, loc) in per_shard.iter().enumerate() {
        let loc = loc.expect("every shard has an on-map edge");
        for (i, &eps) in EPSILONS.iter().enumerate() {
            reqs.push((WorkerId(s * EPSILONS.len() + i), loc, eps));
        }
    }
    reqs
}

#[test]
fn zero_deadline_cold_batch_is_all_fallback_and_geo_indistinguishable() {
    let mut svc = service();
    let mut rng = rand::rngs::StdRng::seed_from_u64(20_260_807);
    let reqs = requests(&svc);
    let served = svc.obfuscate_batch(&reqs, &mut rng);

    assert_eq!(served.len(), reqs.len());
    assert!(
        served.iter().all(|o| o.served == Served::Fallback),
        "a zero deadline must serve every cold request from the fallback"
    );
    // Every served (fallback) mechanism satisfies full ε-Geo-I at its
    // canonical ε — the deadline trades quality, never privacy.
    for o in &served {
        let inst = svc.shard_instance(o.shard);
        let spec = PrivacySpec::full(&inst.aux, o.epsilon, f64::INFINITY);
        let mech = svc
            .fallback_mechanism(o.shard, o.epsilon)
            .expect("fallback was built for this key");
        assert!(
            privacy::verify(&mech, &spec, 1e-6),
            "fallback for shard {} at ε={} violates Geo-I",
            o.shard,
            o.epsilon
        );
    }
}

#[test]
fn warm_batch_serves_cached_optima_bit_identical_to_cold_solves() {
    let mut svc = service();
    let mut rng = rand::rngs::StdRng::seed_from_u64(20_260_807);
    let reqs = requests(&svc);
    let _cold = svc.obfuscate_batch(&reqs, &mut rng);

    let warm = svc.obfuscate_batch(&reqs, &mut rng);
    assert!(
        warm.iter()
            .all(|o| o.served == Served::Optimal { cached: true }),
        "the second batch must be served entirely from the cache"
    );

    // The cached mechanisms are bit-identical to solving the same
    // shard instance cold, and pass privacy::verify at their ε.
    let config = svc.config().clone();
    for o in &warm {
        let inst = svc.shard_instance(o.shard);
        let cold = inst
            .solve(o.epsilon, config.radius, &config.cg)
            .expect("cold solve succeeds");
        let cached = svc
            .cached_mechanism(o.shard, o.epsilon)
            .expect("warm batch implies a cached mechanism");
        assert_eq!(
            *cached, cold.mechanism,
            "cached mechanism for shard {} at ε={} differs from a cold solve",
            o.shard, o.epsilon
        );
        let spec = PrivacySpec::full(&inst.aux, o.epsilon, f64::INFINITY);
        assert!(privacy::verify(&cached, &spec, 1e-6));
    }
}

#[test]
fn fallback_quality_is_worse_but_privacy_is_equal() {
    let mut svc = service();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let reqs = requests(&svc);
    let _ = svc.obfuscate_batch(&reqs, &mut rng); // builds both paths
    for s in 0..svc.shard_count() {
        for &eps in &EPSILONS {
            let inst = svc.shard_instance(s);
            let optimal_loss = svc
                .cached_quality_loss(s, eps)
                .expect("solve landed in cache");
            let fallback_loss = svc
                .fallback_mechanism(s, eps)
                .expect("fallback built")
                .quality_loss(&inst.cost);
            assert!(
                fallback_loss >= optimal_loss - 1e-9,
                "the LP optimum cannot lose to the closed-form fallback \
                 (shard {s}, ε={eps}: {fallback_loss} < {optimal_loss})"
            );
        }
    }
}
