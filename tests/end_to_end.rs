//! End-to-end integration: trace → prior → instance → mechanism →
//! reports → inference attack, across all workspace crates.

use adversary::{bayes, hmm};
use mobility::{estimate_prior, generate_fleet, interval_trace, TraceConfig};
use rand::SeedableRng;
use roadnet::generators;
use vlp_bench::scenarios;
use vlp_core::{CgOptions, Discretization, Mechanism, VlpInstance};

/// A small but non-trivial downtown instance built from traces.
fn build() -> (roadnet::RoadGraph, VlpInstance) {
    let graph = generators::downtown(3, 3, 0.3);
    let disc = Discretization::new(&graph, 0.15);
    let cfg = TraceConfig {
        reports: 300,
        ..TraceConfig::default()
    };
    let fleet = generate_fleet(&graph, &cfg, 3, 7);
    let f_p = estimate_prior(&graph, &disc, &fleet[..1], 0.1).expect("trace on map");
    let f_q = estimate_prior(&graph, &disc, &fleet, 0.1).expect("fleet on map");
    let inst = VlpInstance::new(graph.clone(), 0.15, f_p, f_q);
    (graph, inst)
}

#[test]
fn full_pipeline_produces_feasible_useful_mechanism() {
    let (_, inst) = build();
    let solved = inst
        .solve(5.0, f64::INFINITY, &CgOptions::default())
        .expect("solves");
    // Feasible.
    assert!(solved.mechanism.is_row_stochastic(1e-6));
    assert!(solved.mechanism.max_violation(&solved.spec) <= 1e-6);
    // Better than the uniform mechanism, worse than (or equal to)
    // truthful reporting.
    let uniform_loss = Mechanism::uniform(inst.len()).quality_loss(&inst.cost);
    assert!(solved.quality_loss <= uniform_loss + 1e-9);
    assert!(solved.quality_loss >= -1e-9);
}

#[test]
fn privacy_quality_tradeoff_is_monotone_end_to_end() {
    let (_, inst) = build();
    let mut last_loss = f64::INFINITY;
    for eps in [1.0, 3.0, 9.0] {
        let solved = inst
            .solve(eps, f64::INFINITY, &CgOptions::default())
            .expect("solves");
        assert!(
            solved.quality_loss <= last_loss + 1e-6,
            "loss must fall as privacy loosens"
        );
        last_loss = solved.quality_loss;
    }
}

#[test]
fn mechanism_round_trips_through_the_wire_format() {
    let (_, inst) = build();
    let solved = inst
        .solve(4.0, f64::INFINITY, &CgOptions::default())
        .expect("solves");
    let bytes = serde_json::to_vec(&solved.mechanism).expect("serializes");
    let back: Mechanism = serde_json::from_slice(&bytes).expect("deserializes");
    assert_eq!(back, solved.mechanism);
}

#[test]
fn sampled_reports_match_bayes_model() {
    // Monte-Carlo sanity: empirical adversary error from sampled
    // reports approaches the closed-form AdvError.
    let (_, inst) = build();
    let solved = inst
        .solve(3.0, f64::INFINITY, &CgOptions::default())
        .expect("solves");
    let mech = &solved.mechanism;
    let closed = bayes::adv_error(mech, &inst.f_p, &inst.interval_dists);
    let est = bayes::optimal_estimates(mech, &inst.f_p, &inst.interval_dists);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let n = 20_000;
    let mut total = 0.0;
    for _ in 0..n {
        let i = inst.f_p.sample(&mut rng);
        let j = mech.sample_interval(i, &mut rng);
        total += inst.interval_dists.get_min(i, est[j]);
    }
    let empirical = total / n as f64;
    assert!(
        (empirical - closed).abs() < 0.05 * closed.max(0.05),
        "empirical {empirical} vs closed-form {closed}"
    );
}

#[test]
fn hmm_attack_pipeline_runs_and_is_bounded_by_diameter() {
    let (graph, inst) = build();
    let solved = inst
        .solve(5.0, f64::INFINITY, &CgOptions::default())
        .expect("solves");
    let cfg = TraceConfig {
        reports: 120,
        ..TraceConfig::default()
    };
    let fleet = generate_fleet(&graph, &cfg, 3, 21);
    let seqs: Vec<Vec<usize>> = fleet
        .iter()
        .map(|t| interval_trace(&graph, &inst.disc, t))
        .collect();
    let trans = hmm::TransitionMatrix::learn(inst.len(), &seqs, 0.05);
    let truth = &seqs[0];
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let observed: Vec<usize> = truth
        .iter()
        .map(|&i| solved.mechanism.sample_interval(i, &mut rng))
        .collect();
    let decoded = hmm::viterbi(&trans, &inst.f_p, &solved.mechanism, &observed);
    assert_eq!(decoded.len(), truth.len());
    let err = hmm::trajectory_error(truth, &decoded, &inst.interval_dists);
    // Error is a distance on the map: bounded by the graph diameter.
    let diameter = (0..inst.len())
        .flat_map(|i| (0..inst.len()).map(move |j| (i, j)))
        .map(|(i, j)| inst.interval_dists.get_min(i, j))
        .fold(0.0f64, f64::max);
    assert!(err <= diameter + 1e-9);
}

#[test]
fn assignment_from_reports_is_worse_but_bounded() {
    let (_, inst) = build();
    let solved = inst
        .solve(5.0, f64::INFINITY, &CgOptions::default())
        .expect("solves");
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let vehicles: Vec<usize> = (0..8).map(|_| inst.f_p.sample(&mut rng)).collect();
    let tasks: Vec<usize> = (0..5).map(|_| inst.f_q.sample(&mut rng)).collect();
    let reported: Vec<usize> = vehicles
        .iter()
        .map(|&v| solved.mechanism.sample_interval(v, &mut rng))
        .collect();
    let cost_from = |locs: &[usize]| -> Vec<Vec<f64>> {
        tasks
            .iter()
            .map(|&t| {
                locs.iter()
                    .map(|&v| inst.interval_dists.get(v, t))
                    .collect()
            })
            .collect()
    };
    let true_cost = |a: &assignment::Assignment| -> f64 {
        a.pairs
            .iter()
            .enumerate()
            .map(|(ti, &vi)| inst.interval_dists.get(vehicles[vi], tasks[ti]))
            .sum()
    };
    let with_privacy = true_cost(&assignment::hungarian(&cost_from(&reported)).expect("ok"));
    let without = true_cost(&assignment::hungarian(&cost_from(&vehicles)).expect("ok"));
    // Obfuscation can only hurt the matching (or tie), and the penalty
    // is bounded by the achievable worst case: every task served from
    // the farthest interval.
    assert!(with_privacy >= without - 1e-9);
    let worst = tasks
        .iter()
        .map(|&t| {
            (0..inst.len())
                .map(|v| inst.interval_dists.get(v, t))
                .fold(0.0f64, f64::max)
        })
        .sum::<f64>();
    assert!(with_privacy <= worst + 1e-9);
}

#[test]
fn platform_round_trip_respects_privacy_and_serves_tasks() {
    // The §2 framework built on top of everything: the server only ever
    // sees reports drawn from the mechanism, assignments happen, and
    // the mechanism the workers hold satisfies Geo-I at the configured
    // budget throughout.
    use platform::{Server, ServerConfig, Simulation, SimulationConfig};
    let graph = generators::downtown(3, 3, 0.3);
    let server = Server::bootstrap(
        graph,
        ServerConfig {
            delta: 0.2,
            epsilon: 5.0,
            ..ServerConfig::default()
        },
    )
    .expect("server boots");
    let mech = server.mechanism().clone();
    let k = server.disc().len();
    assert!(mech.is_row_stochastic(1e-6));
    let mut sim = Simulation::new(
        server,
        SimulationConfig {
            n_workers: 6,
            ..SimulationConfig::default()
        },
        17,
    );
    let report = sim.run(60);
    assert!(report.assigned_tasks > 0, "platform must assign tasks");
    assert!(report.completed_tasks > 0, "platform must complete tasks");
    // Quality realized end-to-end is consistent: the per-assignment
    // estimate gap stays bounded by the map diameter.
    let diameter = (0..k)
        .flat_map(|i| (0..k).map(move |j| (i, j)))
        .map(|(i, j)| sim.server().interval_dists().get_min(i, j))
        .fold(0.0f64, f64::max);
    assert!(report.mean_estimate_gap() <= diameter + 1e-9);
}

#[test]
fn scenario_helpers_agree_with_manual_pipeline() {
    let graph = scenarios::rome_graph();
    let traces = scenarios::fleet(&graph, 2, 200, 3);
    let inst = scenarios::cab_instance(&graph, 0.4, &traces[0], &traces);
    let (mech, loss, _) = scenarios::solve_ours(&inst, 5.0, -1e-3);
    let metrics = scenarios::evaluate(&inst, &mech);
    assert!((metrics.etdd - loss).abs() < 1e-6);
    assert!((metrics.etdd - mech.quality_loss(&inst.cost)).abs() < 1e-9);
}
