//! Property-based chaos tests: for *arbitrary* deterministic fault
//! schedules, the mechanism service must keep every servable mechanism
//! ε-Geo-I valid (the resilience ladder trades utility, never
//! privacy), and an empty schedule must leave the service bit-identical
//! to one with no chaos configured at all.

use std::collections::HashMap;
use std::sync::Once;
use std::time::Duration;

use platform::{MechanismService, ResilienceConfig, ServiceConfig, WorkerId};
use proptest::prelude::*;
use rand::SeedableRng;
use roadnet::{generators, Location};
use vlp_core::privacy;
use vlp_obs::failpoint::{site, FaultMode, FaultPlan};

/// Injected pricing panics unwind through `catch_unwind` by design;
/// silence their default report so real failures stay visible.
fn quiet_chaos_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            if msg.is_some_and(|m| m.contains("chaos:")) {
                return;
            }
            default_hook(info);
        }));
    });
}

fn service(chaos: FaultPlan) -> MechanismService {
    MechanismService::new(
        generators::grid(3, 4, 0.4, true),
        ServiceConfig {
            n_shards: 2,
            delta: 0.2,
            solve_deadline: Duration::from_secs(30),
            resilience: ResilienceConfig {
                // Aggressive thresholds so short runs still exercise
                // breaker trips and half-open probes.
                breaker_threshold: 2,
                breaker_cooldown: 1,
                ..ResilienceConfig::default()
            },
            chaos,
            ..ServiceConfig::default()
        },
    )
}

/// One request per (shard, ε) pair, on the first edge mapping into
/// each shard.
fn requests(svc: &MechanismService, epsilons: &[f64]) -> Vec<(WorkerId, Location, f64)> {
    let g = generators::grid(3, 4, 0.4, true);
    let mut per_shard: HashMap<usize, Location> = HashMap::new();
    for e in 0..g.edge_count() {
        let loc = Location::new(roadnet::EdgeId(e), 0.1);
        if let Some((s, _)) = svc.partition().to_local(loc) {
            per_shard.entry(s).or_insert(loc);
        }
    }
    let mut out = Vec::new();
    for s in 0..svc.shard_count() {
        for (i, &eps) in epsilons.iter().enumerate() {
            out.push((WorkerId(s * epsilons.len() + i), per_shard[&s], eps));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the schedule injects — solver faults on both LP paths,
    /// pricing panics, shard blackouts, evict storms, deadline jitter —
    /// every request is served and everything the service can serve
    /// from satisfies the *full* Geo-I constraint set at its canonical
    /// ε, batch after batch.
    #[test]
    fn arbitrary_fault_schedules_preserve_privacy(
        plan_seed in 0u64..1_000,
        p_solve in 0.0f64..0.8,
        p_resolve in 0.0f64..0.8,
        p_panic in 0.0f64..0.5,
        blackout_shard in 0u64..2,
        blackout_from in 0u64..3,
        blackout_len in 0u64..4,
        storm_every in 0u64..4,
        jitter_every in 0u64..4,
    ) {
        quiet_chaos_panics();
        let plan = FaultPlan::new(plan_seed)
            .with(site::LP_SOLVE, FaultMode::Ratio(p_solve))
            .with(site::LP_RESOLVE, FaultMode::Ratio(p_resolve))
            .with(site::CG_PRICING_PANIC, FaultMode::Ratio(p_panic))
            .with(
                site::shard_blackout(blackout_shard as usize),
                FaultMode::Window { from: blackout_from, to: blackout_from + blackout_len },
            )
            .with(site::SERVICE_EVICT_STORM, FaultMode::Every(storm_every))
            .with(site::SERVICE_DEADLINE_JITTER, FaultMode::Every(jitter_every));
        let mut svc = service(plan);
        let reqs = requests(&svc, &[2.0, 5.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(plan_seed ^ 0xA5A5);
        for batch in 0..4 {
            let served = svc.obfuscate_batch(&reqs, &mut rng);
            prop_assert_eq!(
                served.len(), reqs.len(),
                "batch {} must serve every request", batch
            );
            for o in &served {
                prop_assert!(o.epsilon <= 5.0 + 1e-12, "canonical ε never exceeds requested");
            }
            for (s, eps, mechanism) in svc.live_mechanisms() {
                let inst = svc.shard_instance(s);
                let spec = vlp_core::PrivacySpec::full(&inst.aux, eps, f64::INFINITY);
                prop_assert!(
                    privacy::verify(&mechanism, &spec, 1e-6),
                    "batch {}: shard {} mechanism at ε={} violates Geo-I", batch, s, eps
                );
            }
        }
    }

    /// An empty fault plan — whatever its seed — leaves the ladder
    /// inert: outputs are bit-identical to a service with no chaos
    /// configured, for any workload rng seed.
    #[test]
    fn empty_fault_plans_are_bit_identical_to_no_plan(
        chaos_seed in any::<u64>(),
        rng_seed in 0u64..1_000,
    ) {
        let mut plain = service(FaultPlan::default());
        let mut armed = service(FaultPlan::new(chaos_seed));
        let reqs = requests(&plain, &[2.0, 5.0]);
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(rng_seed);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(rng_seed);
        for _ in 0..2 {
            let out_a = plain.obfuscate_batch(&reqs, &mut rng_a);
            let out_b = armed.obfuscate_batch(&reqs, &mut rng_b);
            prop_assert_eq!(&out_a, &out_b);
        }
    }
}
