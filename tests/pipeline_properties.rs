//! Property-based integration tests: invariants that must hold for
//! randomly drawn maps, priors, and privacy budgets.

use proptest::prelude::*;
use roadnet::generators;
use vlp_core::constraint_reduction::reduced_spec;
use vlp_core::dvlp::solve_direct;
use vlp_core::{
    AuxiliaryGraph, CgOptions, CostMatrix, Discretization, IntervalDistances, Mechanism, Prior,
    PrivacySpec,
};

/// Builds a small instance from generator knobs.
fn instance(
    seed: u64,
    two_way: bool,
    delta: f64,
    weights: &[f64],
) -> (AuxiliaryGraph, CostMatrix, Prior) {
    let graph = if two_way {
        generators::grid(2, 2, 0.5, true)
    } else {
        generators::downtown(2, 3, 0.4)
    };
    let _ = seed;
    let nd = roadnet::NodeDistances::all_pairs(&graph);
    let disc = Discretization::new(&graph, delta);
    let aux = AuxiliaryGraph::build(&graph, &disc);
    let id = IntervalDistances::build(&graph, &nd, &disc);
    let k = disc.len();
    // Stretch/trim the weight vector to length K, keeping positivity.
    let w: Vec<f64> = (0..k)
        .map(|i| weights[i % weights.len()].max(1e-3))
        .collect();
    let f_p = Prior::from_weights(&w).expect("positive weights");
    let cost = CostMatrix::build(&id, &f_p, &Prior::uniform(k));
    (aux, cost, f_p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any solved mechanism satisfies its privacy spec, is
    /// row-stochastic, and never loses to the uniform mechanism.
    #[test]
    fn solved_mechanisms_are_feasible_and_competitive(
        seed in 0u64..50,
        two_way in any::<bool>(),
        eps in 0.5f64..8.0,
        weights in prop::collection::vec(0.01f64..5.0, 4..10),
    ) {
        let (aux, cost, _) = instance(seed, two_way, 0.5, &weights);
        let spec = reduced_spec(&aux, eps, f64::INFINITY);
        let opts = CgOptions { parallel: false, ..CgOptions::default() };
        let (mech, obj, _) = vlp_core::solve_column_generation(&cost, &spec, &opts).unwrap();
        prop_assert!(mech.is_row_stochastic(1e-6));
        prop_assert!(mech.max_violation(&spec) <= 1e-6);
        let uniform = Mechanism::uniform(cost.len()).quality_loss(&cost);
        prop_assert!(obj <= uniform + 1e-6);
        prop_assert!(obj >= -1e-9);
        // Also satisfies the *full* (unreduced) spec: constraint
        // reduction is sufficient, not just necessary.
        let full = PrivacySpec::full(&aux, eps, f64::INFINITY);
        prop_assert!(mech.max_violation(&full) <= 1e-5);
    }

    /// The reduced spec attains the same optimum as the full spec on
    /// random small instances (the §4.2 loss-free claim).
    #[test]
    fn constraint_reduction_preserves_the_optimum(
        eps in 0.5f64..6.0,
        weights in prop::collection::vec(0.01f64..5.0, 4..8),
    ) {
        let (aux, cost, _) = instance(0, true, 0.5, &weights);
        let full = PrivacySpec::full(&aux, eps, f64::INFINITY);
        let red = reduced_spec(&aux, eps, f64::INFINITY);
        let (_, o_full) = solve_direct(&cost, &full).unwrap();
        let (_, o_red) = solve_direct(&cost, &red).unwrap();
        prop_assert!((o_full - o_red).abs() < 1e-5,
            "full {o_full} vs reduced {o_red}");
    }

    /// Quality loss is monotone in epsilon (more privacy costs more).
    #[test]
    fn loss_is_monotone_in_epsilon(
        weights in prop::collection::vec(0.01f64..5.0, 4..8),
    ) {
        let (aux, cost, _) = instance(1, false, 0.4, &weights);
        let opts = CgOptions { parallel: false, ..CgOptions::default() };
        let mut last = f64::INFINITY;
        for eps in [1.0, 2.0, 4.0, 8.0] {
            let spec = reduced_spec(&aux, eps, f64::INFINITY);
            let (_, obj, _) = vlp_core::solve_column_generation(&cost, &spec, &opts).unwrap();
            prop_assert!(obj <= last + 1e-6, "eps {eps}: {obj} > {last}");
            last = obj;
        }
    }

    /// The trade-off bound of Proposition 4.5 lower-bounds the direct
    /// optimum for random priors and budgets.
    #[test]
    fn tradeoff_bound_is_valid(
        eps in 0.5f64..8.0,
        weights in prop::collection::vec(0.01f64..5.0, 4..8),
    ) {
        let (aux, cost, _) = instance(2, true, 0.5, &weights);
        let spec = reduced_spec(&aux, eps, f64::INFINITY);
        let (_, opt) = solve_direct(&cost, &spec).unwrap();
        let lb = vlp_core::bounds::tradeoff_lower_bound(&cost, &aux, eps);
        prop_assert!(lb <= opt + 1e-6, "bound {lb} above optimum {opt}");
    }

    /// Bayesian posterior + AdvError stay well-formed for arbitrary
    /// mechanisms built from random row weights.
    #[test]
    fn adversary_metrics_are_well_formed(
        rows in prop::collection::vec(0.01f64..1.0, 16),
        prior_w in prop::collection::vec(0.01f64..1.0, 4),
    ) {
        let k = 4;
        let graph = generators::grid(2, 2, 0.5, true);
        let nd = roadnet::NodeDistances::all_pairs(&graph);
        let disc = Discretization::new(&graph, 1.0); // 8 edges -> 8 intervals
        let id = IntervalDistances::build(&graph, &nd, &disc);
        // Build a k x k mechanism over the first 4 intervals only if
        // the discretization is larger; use a matching distance matrix.
        prop_assume!(disc.len() >= k);
        let mut z = rows;
        for r in 0..k {
            let s: f64 = z[r * k..(r + 1) * k].iter().sum();
            for v in &mut z[r * k..(r + 1) * k] {
                *v /= s;
            }
        }
        let mech = Mechanism::from_matrix(k, z, 1e-6).unwrap();
        let prior = Prior::from_weights(&prior_w).unwrap();
        // Shrink the distance matrix to the first k intervals.
        let mut small = vec![0.0; k * k];
        for i in 0..k {
            for j in 0..k {
                small[i * k + j] = id.get(i, j);
            }
        }
        // Re-wrap via a tiny helper instance: adversary takes
        // IntervalDistances, so rebuild one on a k-interval sub-map is
        // not possible directly; instead verify invariants that only
        // need the posterior.
        for j in 0..k {
            let post = adversary::posterior(&mech, &prior, j);
            let total: f64 = post.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(post.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        }
    }
}
