//! Concurrency stress test for the always-on serving core, written to
//! run under ThreadSanitizer (the CI `tsan` job): several submitter
//! threads hammer the open-loop path through [`platform::ServiceHandle`]
//! while a ticker advances the logical clock, a deterministic fault
//! plan injects solver failures and a shard blackout, and the service
//! is shut down mid-flight. The test asserts liveness (every
//! submission returns a response), the admission contract (responses
//! are served or explicitly rejected — never lost), and the privacy
//! floor (every mechanism the service still holds passes the full-spec
//! Geo-I audit). Its real job, though, is giving TSan interleavings to
//! chew on: any data race in the routing table, queues, or shutdown
//! path fails the job.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use platform::{MechanismService, ResilienceConfig, Response, ServiceConfig, WorkerId};
use rand::SeedableRng;
use roadnet::{generators, EdgeId, Location};
use vlp_core::privacy;
use vlp_obs::failpoint::{site, FaultMode, FaultPlan};

/// Submitter threads running concurrently.
const SUBMITTERS: usize = 4;

/// Submissions per thread. Kept modest: TSan runs 5–15× slower than
/// native, and the interleavings matter more than the volume.
const PER_THREAD: usize = 120;

#[test]
fn concurrent_submitters_faults_and_shutdown_race_cleanly() {
    let chaos = FaultPlan::new(42)
        .with(site::LP_SOLVE, FaultMode::Ratio(0.3))
        .with(site::LP_RESOLVE, FaultMode::Ratio(0.2))
        .with(
            site::shard_blackout(1),
            FaultMode::Window { from: 2, to: 4 },
        );
    let mut svc = MechanismService::new(
        generators::grid(3, 4, 0.4, true),
        ServiceConfig {
            n_shards: 2,
            delta: 0.2,
            queue_capacity: 4,
            solver_threads: 2,
            solve_deadline: Duration::ZERO,
            resilience: ResilienceConfig {
                breaker_threshold: 2,
                breaker_cooldown: 1,
                backoff_base: Duration::from_micros(100),
                backoff_cap: Duration::from_millis(1),
                ..ResilienceConfig::default()
            },
            chaos,
            ..ServiceConfig::default()
        },
    );

    // One request location per shard.
    let g = generators::grid(3, 4, 0.4, true);
    let mut locs: Vec<Option<Location>> = vec![None; svc.shard_count()];
    for e in 0..g.edge_count() {
        let loc = Location::new(EdgeId(e), 0.1);
        if let Some((s, _)) = svc.partition().to_local(loc) {
            locs[s].get_or_insert(loc);
        }
    }
    let locs: Vec<Location> = locs
        .into_iter()
        .enumerate()
        .map(|(s, l)| l.unwrap_or_else(|| panic!("no location for shard {s}")))
        .collect();
    let epsilons = [2.0, 5.0, 10.0];

    let handle = svc.handle();
    let served = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let off_partition = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for t in 0..SUBMITTERS {
            let handle = handle.clone();
            let locs = locs.clone();
            let served = Arc::clone(&served);
            let rejected = Arc::clone(&rejected);
            let off_partition = Arc::clone(&off_partition);
            scope.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE ^ t as u64);
                for i in 0..PER_THREAD {
                    let loc = locs[(t + i) % locs.len()];
                    let eps = epsilons[(t * 7 + i) % epsilons.len()];
                    match handle.submit(WorkerId(t * PER_THREAD + i), loc, eps, &mut rng) {
                        Response::Served(o) => {
                            assert!(o.epsilon <= eps + 1e-12, "never less private than asked");
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Response::Rejected { .. } => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Response::OffPartition { .. } => {
                            off_partition.fetch_add(1, Ordering::Relaxed);
                        }
                        Response::BudgetExhausted { .. } => {
                            unreachable!("no trace budget configured")
                        }
                    }
                    if i % 16 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
        }

        // Ticker: advance the logical epoch (breaker cooldowns, fault
        // windows, metric flushes) while submitters run.
        let ticker = handle.clone();
        scope.spawn(move || {
            for _ in 0..8 {
                std::thread::sleep(Duration::from_millis(2));
                ticker.tick();
            }
        });

        // Shut down mid-flight: the drain must race cleanly against
        // live submitters, which keep getting served from cache (or
        // explicitly rejected when cold) through the retired handle.
        std::thread::sleep(Duration::from_millis(5));
        svc.shutdown();
    });

    let served = served.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);
    let off_partition = off_partition.load(Ordering::Relaxed);
    assert_eq!(off_partition, 0, "workload locations are all on-partition");
    assert_eq!(
        served + rejected,
        (SUBMITTERS * PER_THREAD) as u64,
        "every submission returns exactly one response"
    );
    assert!(served > 0, "the workload cannot be rejected wholesale");

    // The privacy floor survives every interleaving: whatever rung a
    // mechanism sits on after the dust settles, it satisfies the full
    // (unreduced) Geo-I constraint set at its canonical ε.
    let live = svc.live_mechanisms();
    assert!(!live.is_empty(), "the run must leave servable mechanisms");
    for (s, canonical, mech) in live {
        let inst = svc.shard_instance(s);
        let spec = vlp_core::PrivacySpec::full(&inst.aux, canonical, f64::INFINITY);
        assert!(
            privacy::verify(&mech, &spec, 1e-6),
            "live mechanism for shard {s} at ε={canonical} violates Geo-I"
        );
    }
}
