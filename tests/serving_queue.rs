//! Queueing-layer contract tests for the always-on serving core:
//! bounded-queue backpressure rejects instead of blocking, shutdown
//! drains deterministically, a cache-hit workload never enters a solve
//! queue, and an empty fault plan is bit-identical to no plan on the
//! open-loop path.

use std::time::{Duration, Instant};

use platform::{MechanismService, ResilienceConfig, Response, Served, ServiceConfig, WorkerId};
use proptest::prelude::*;
use rand::SeedableRng;
use roadnet::{generators, EdgeId, Location};
use vlp_obs::failpoint::{site, FaultMode, FaultPlan};

/// One request location per shard, on the first edge mapping into it.
fn shard_locations(svc: &MechanismService) -> Vec<Location> {
    let g = generators::grid(3, 4, 0.4, true);
    let mut locs = vec![None; svc.shard_count()];
    for e in 0..g.edge_count() {
        let loc = Location::new(EdgeId(e), 0.1);
        if let Some((s, _)) = svc.partition().to_local(loc) {
            locs[s].get_or_insert(loc);
        }
    }
    locs.into_iter()
        .enumerate()
        .map(|(s, l)| l.unwrap_or_else(|| panic!("no location for shard {s}")))
        .collect()
}

fn service(config: ServiceConfig) -> MechanismService {
    MechanismService::new(generators::grid(3, 4, 0.4, true), config)
}

/// With a single worker wedged on injected solve failures (long
/// backoffs) and a one-slot queue, cold submissions past the queue
/// bound come back `Rejected` immediately — the caller is never parked
/// on a full queue.
#[test]
fn full_queue_rejects_cold_submissions_without_blocking() {
    let mut svc = service(ServiceConfig {
        n_shards: 2,
        delta: 0.2,
        queue_capacity: 1,
        solver_threads: 1,
        solve_deadline: Duration::ZERO,
        resilience: ResilienceConfig {
            max_attempts: 3,
            // Wide margins so the non-blocking assertion below holds
            // even under ThreadSanitizer's ~10× slowdown in CI.
            backoff_base: Duration::from_millis(200),
            backoff_cap: Duration::from_millis(400),
            // Keep the breaker out of this test: admission decisions
            // here must come from the queue bound alone.
            breaker_threshold: u32::MAX,
            ..ResilienceConfig::default()
        },
        chaos: FaultPlan::new(11).with(site::LP_SOLVE, FaultMode::Always),
        ..ServiceConfig::default()
    });
    let loc = shard_locations(&svc)[0];
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // Four distinct ε buckets on one shard: at most two can be
    // admitted (one on the worker, one queued); the rest must shed.
    let t = Instant::now();
    let responses: Vec<Response> = [2.0, 5.0, 10.0, 20.0]
        .iter()
        .enumerate()
        .map(|(i, &eps)| svc.submit(WorkerId(i), loc, eps, &mut rng))
        .collect();
    let elapsed = t.elapsed();

    let rejected = responses
        .iter()
        .filter(|r| matches!(r, Response::Rejected { shard: 0, .. }))
        .count();
    let served = responses
        .iter()
        .filter(|r| matches!(r.served(), Some(o) if o.served == Served::Fallback))
        .count();
    assert!(
        rejected >= 2,
        "one-slot queue + one worker admits at most two of four cold keys, \
         got {responses:?}"
    );
    assert_eq!(served + rejected, 4, "every response is served or rejected");
    // A blocking send would wait out the worker's ≥600ms of backoff
    // per job; explicit backpressure returns well inside that even on
    // a sanitizer-slowed runner.
    assert!(
        elapsed < Duration::from_millis(500),
        "submissions took {elapsed:?} — a full queue must reject, not block"
    );
    svc.shutdown();
}

/// Shutdown reports one drain slot per shard, leaves every admitted
/// key solved into the cache, and is idempotent.
#[test]
fn shutdown_drains_every_admitted_key_deterministically() {
    let mut svc = service(ServiceConfig {
        n_shards: 2,
        delta: 0.2,
        solve_deadline: Duration::ZERO,
        ..ServiceConfig::default()
    });
    let locs = shard_locations(&svc);
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let epsilons = [2.0, 5.0, 10.0];
    for (s, &loc) in locs.iter().enumerate() {
        for (i, &eps) in epsilons.iter().enumerate() {
            let r = svc.submit(WorkerId(s * epsilons.len() + i), loc, eps, &mut rng);
            assert!(r.served().is_some(), "cold admissions serve the fallback");
        }
    }

    let report = svc.shutdown();
    assert_eq!(
        report.drained.len(),
        svc.shard_count(),
        "the drain report covers every shard in order"
    );
    for (s, &loc) in locs.iter().enumerate() {
        for &eps in &epsilons {
            assert!(
                svc.cached_mechanism(s, eps).is_some(),
                "admitted key (shard {s}, ε={eps}) must be solved during the drain"
            );
            let r = svc.submit(WorkerId(99), loc, eps, &mut rng);
            assert!(
                matches!(r.served(), Some(o) if matches!(o.served, Served::Optimal { .. })),
                "cache hits keep serving after shutdown"
            );
        }
    }
    // Cold keys can no longer be admitted.
    assert!(matches!(
        svc.submit(WorkerId(99), locs[0], 17.25, &mut rng),
        Response::Rejected { shard: 0, .. }
    ));
    assert_eq!(svc.shutdown().total(), 0, "second shutdown drains nothing");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// After warming every key, an arbitrary hit-only workload is
    /// served entirely on the caller path: every response is a cached
    /// optimal mechanism, which can only happen if no request ever
    /// reached the admission path (and hence no solve queue).
    #[test]
    fn hit_only_workloads_never_reach_the_admission_path(
        seed in 0u64..1_000,
        picks in proptest::collection::vec((0usize..2, 0usize..3), 1..60),
    ) {
        let mut svc = service(ServiceConfig {
            n_shards: 2,
            delta: 0.2,
            solve_deadline: Duration::ZERO,
            ..ServiceConfig::default()
        });
        let locs = shard_locations(&svc);
        let epsilons = [2.0, 5.0, 10.0];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for (s, &loc) in locs.iter().enumerate() {
            for &eps in &epsilons {
                svc.submit(WorkerId(s), loc, eps, &mut rng);
            }
        }
        svc.quiesce();
        for (i, &(s, e)) in picks.iter().enumerate() {
            let r = svc.submit(WorkerId(i), locs[s], epsilons[e], &mut rng);
            prop_assert!(
                matches!(
                    r.served(),
                    Some(o) if o.served == Served::Optimal { cached: true }
                ),
                "warm submission {i} was not a pure cache hit: {r:?}"
            );
        }
        svc.shutdown();
    }

    /// A seeded-but-empty fault plan leaves the open-loop path
    /// bit-identical to the default (no-chaos) configuration: same
    /// responses, same sampled locations, request for request.
    #[test]
    fn empty_fault_plan_is_bit_identical_on_the_open_loop_path(
        seed in 0u64..1_000,
        picks in proptest::collection::vec((0usize..2, 0usize..3), 1..40),
    ) {
        let run = |chaos: FaultPlan| {
            let mut svc = service(ServiceConfig {
                n_shards: 2,
                delta: 0.2,
                solve_deadline: Duration::ZERO,
                chaos,
                ..ServiceConfig::default()
            });
            let locs = shard_locations(&svc);
            let epsilons = [2.0, 5.0, 10.0];
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut responses = Vec::new();
            for (s, &loc) in locs.iter().enumerate() {
                for &eps in &epsilons {
                    responses.push(svc.submit(WorkerId(s), loc, eps, &mut rng));
                }
            }
            svc.quiesce();
            svc.tick();
            for (i, &(s, e)) in picks.iter().enumerate() {
                responses.push(svc.submit(WorkerId(i), locs[s], epsilons[e], &mut rng));
            }
            svc.shutdown();
            responses
        };
        let without = run(FaultPlan::default());
        let with_empty = run(FaultPlan::new(0xDEAD_BEEF));
        prop_assert_eq!(without, with_empty);
    }
}
