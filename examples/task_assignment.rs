//! Multi-vehicle task assignment under obfuscation (the Fig. 14
//! scenario): the server matches tasks to vehicles from obfuscated
//! reports and we compare the true travel cost of Hungarian vs greedy
//! matching, with and without obfuscation.
//!
//! ```text
//! cargo run --release -p vlp-bench --example task_assignment
//! ```

use rand::SeedableRng;
use vlp_bench::scenarios;

fn main() {
    let graph = scenarios::rome_graph();
    let traces = scenarios::fleet(&graph, 4, 300, 5);
    let inst = scenarios::cab_instance(&graph, 0.2, &traces[0], &traces);
    let (mech, _, _) = scenarios::solve_ours(&inst, 5.0, scenarios::DEFAULT_XI);

    let mut rng = rand::rngs::StdRng::seed_from_u64(88);
    let n_vehicles = 12;
    let n_tasks = 8;
    let vehicles: Vec<usize> = (0..n_vehicles).map(|_| inst.f_p.sample(&mut rng)).collect();
    let tasks: Vec<usize> = (0..n_tasks).map(|_| inst.f_q.sample(&mut rng)).collect();
    let reported: Vec<usize> = vehicles
        .iter()
        .map(|&v| mech.sample_interval(v, &mut rng))
        .collect();

    // Cost matrices: rows = tasks, cols = vehicles.
    let estimated: Vec<Vec<f64>> = tasks
        .iter()
        .map(|&t| {
            reported
                .iter()
                .map(|&v| inst.interval_dists.get(v, t))
                .collect()
        })
        .collect();
    let truthful: Vec<Vec<f64>> = tasks
        .iter()
        .map(|&t| {
            vehicles
                .iter()
                .map(|&v| inst.interval_dists.get(v, t))
                .collect()
        })
        .collect();

    let true_cost = |a: &assignment::Assignment| -> f64 {
        a.pairs
            .iter()
            .enumerate()
            .map(|(ti, &vi)| inst.interval_dists.get(vehicles[vi], tasks[ti]))
            .sum()
    };

    let hung_obf = assignment::hungarian(&estimated).expect("tasks <= vehicles");
    let greedy_obf = assignment::greedy(&estimated).expect("tasks <= vehicles");
    let hung_true = assignment::hungarian(&truthful).expect("tasks <= vehicles");

    println!("{n_tasks} tasks, {n_vehicles} vehicles (eps = 5/km obfuscation)");
    println!(
        "hungarian on obfuscated reports: total true travel {:.3} km",
        true_cost(&hung_obf)
    );
    println!(
        "greedy    on obfuscated reports: total true travel {:.3} km",
        true_cost(&greedy_obf)
    );
    println!(
        "hungarian on true locations:     total true travel {:.3} km",
        true_cost(&hung_true)
    );
    println!(
        "\nprivacy premium (hungarian): {:.3} km",
        true_cost(&hung_obf) - true_cost(&hung_true),
    );
    println!(
        "greedy vs hungarian on true cost: {:+.3} km (both optimize the *estimated* \
         cost, so their true-cost order can go either way on a single draw)",
        true_cost(&greedy_obf) - true_cost(&hung_obf),
    );
}
