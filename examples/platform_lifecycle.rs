//! The full platform lifecycle of §2 / Fig. 2: the server boots,
//! publishes tasks, workers report obfuscated locations, snapshots
//! assign tasks, and a drifting worker population triggers a mechanism
//! refresh that workers re-download.
//!
//! ```text
//! cargo run --release -p vlp-bench --example platform_lifecycle
//! ```

use platform::{Server, ServerConfig, Simulation, SimulationConfig};
use roadnet::generators;

fn main() -> Result<(), vlp_core::VlpError> {
    let graph = generators::downtown(3, 3, 0.3);
    println!(
        "booting server on a {}-segment downtown map",
        graph.edge_count()
    );
    let server = Server::bootstrap(
        graph,
        ServerConfig {
            delta: 0.15,
            epsilon: 5.0,
            refresh_min_reports: 60,
            refresh_tv_threshold: 0.15,
            ..ServerConfig::default()
        },
    )?;
    println!(
        "mechanism epoch {} ready: expected quality loss {:.4} km",
        server.epoch(),
        server.quality_loss()
    );

    let mut sim = Simulation::new(
        server,
        SimulationConfig {
            n_workers: 8,
            snapshot_every: 2,
            task_rate: 0.7,
            ..SimulationConfig::default()
        },
        2024,
    );
    let report = sim.run(120);

    println!("\nafter 120 ticks:");
    println!("  tasks published  {}", report.published_tasks);
    println!("  tasks assigned   {}", report.assigned_tasks);
    println!("  tasks completed  {}", report.completed_tasks);
    println!("  true travel      {:.2} km", report.true_travel_km);
    println!(
        "  estimated travel {:.2} km (server's view from reports)",
        report.estimated_travel_km
    );
    println!(
        "  estimate gap     {:.3} km per assignment",
        report.mean_estimate_gap()
    );
    println!("  mech refreshes   {}", report.mechanism_refreshes);
    println!(
        "\nThe server never observed a true location; every assignment was\n\
         computed from geo-indistinguishable reports."
    );
    Ok(())
}
