//! Quickstart: build a map, solve for an obfuscation mechanism, and
//! report a privacy-preserving location.
//!
//! ```text
//! cargo run --release -p vlp-bench --example quickstart
//! ```

use rand::SeedableRng;
use roadnet::generators;
use vlp_core::{CgOptions, VlpError, VlpInstance};

fn main() -> Result<(), VlpError> {
    // 1. A road network: a 4x4 downtown grid with one-way streets,
    //    200 m between connections.
    let graph = generators::downtown(4, 4, 0.2);
    println!(
        "map: {} connections, {} road segments, {:.0}% one-way",
        graph.node_count(),
        graph.edge_count(),
        100.0 * graph.one_way_fraction()
    );

    // 2. Discretize into 100 m intervals and pose the VLP problem with
    //    uniform worker/task priors.
    let inst = VlpInstance::uniform(graph, 0.1);
    println!("intervals: K = {}", inst.len());

    // 3. Solve at (eps = 5/km, unbounded radius) geo-indistinguishability
    //    via constraint reduction + column generation.
    let solved = inst.solve(5.0, f64::INFINITY, &CgOptions::default())?;
    println!(
        "solved in {} CG iterations ({} ms): expected quality loss {:.4} km",
        solved.diagnostics.iterations,
        solved.diagnostics.wall_time.as_millis(),
        solved.quality_loss
    );
    println!(
        "geo-indistinguishability residual: {:.2e} (<= 0 means satisfied)",
        solved.mechanism.max_violation(&solved.spec)
    );

    // 4. A worker at a true location samples what to report.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let true_location = inst.disc.interval(3).midpoint();
    for round in 0..3 {
        let reported = solved
            .mechanism
            .sample_location(&inst.graph, &inst.disc, true_location, &mut rng)
            .expect("true location lies on the map");
        println!("round {round}: true {true_location}  ->  reported {reported}");
    }
    Ok(())
}
