//! Campus pilot study (§5.2): the server computes and *serializes* the
//! obfuscation function, the worker downloads it, drives around campus
//! reporting obfuscated locations, and the server estimates travel
//! costs to the deployed tasks from those reports.
//!
//! ```text
//! cargo run --release -p vlp-bench --example campus_pilot
//! ```

use mobility::{estimate_prior, generate_trace, TraceConfig};
use rand::SeedableRng;
use vlp_bench::scenarios;
use vlp_core::{Discretization, Mechanism};

fn main() {
    let graph = scenarios::region_a();
    let delta = 0.15;
    let disc = Discretization::new(&graph, delta);
    let k = disc.len();
    println!(
        "campus map: {} segments discretized into K = {k} intervals",
        graph.edge_count()
    );

    // The participant's driving history yields the prior.
    let cfg = TraceConfig {
        reports: 400,
        report_period_secs: 25.0,
        ..TraceConfig::default()
    };
    let history = generate_trace(&graph, &cfg, 2024);
    let f_p = estimate_prior(&graph, &disc, &[history], scenarios::PRIOR_SMOOTHING)
        .expect("participant drives on campus");

    // Five tasks deployed across campus.
    let tasks = scenarios::spread_tasks(k, 5);
    let inst = scenarios::instance_with_tasks(&graph, delta, f_p, &tasks);

    // Server side: solve and publish the obfuscation function.
    let (mechanism, loss, _) = scenarios::solve_ours(&inst, 5.0, scenarios::DEFAULT_XI);
    let wire = serde_json::to_vec(&mechanism).expect("mechanism serializes");
    println!(
        "server: solved mechanism (ETDD {loss:.4} km), download size {} bytes",
        wire.len()
    );

    // Worker side: download (deserialize) and drive, reporting every
    // 25 s through the mechanism.
    let downloaded: Mechanism = serde_json::from_slice(&wire).expect("mechanism deserializes");
    let drive_cfg = TraceConfig {
        reports: 10,
        report_period_secs: 25.0,
        ..TraceConfig::default()
    };
    let drive = generate_trace(&graph, &drive_cfg, 555);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    println!("\nreport  true loc            reported loc        est. dist to nearest task (km)");
    for (t, &p) in drive.locations.iter().enumerate() {
        let reported = downloaded
            .sample_location(&graph, &inst.disc, p, &mut rng)
            .expect("drive stays on the map");
        // Server estimates travel cost from the *reported* interval.
        let rep_iv = inst.disc.locate(&graph, reported).expect("on map");
        let est = tasks
            .iter()
            .map(|&task| inst.interval_dists.get(rep_iv, task))
            .fold(f64::INFINITY, f64::min);
        println!("{t:>6}  {p}  {reported}  {est:>8.3}");
    }
    println!("\nThe server never sees the true locations; quality loss stays at {loss:.4} km.");
}
