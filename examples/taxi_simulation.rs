//! Trace-driven taxi simulation (the §5.1 pipeline end to end):
//! generate a fleet, estimate per-cab priors, solve our road-network
//! mechanism and the 2-D baseline, then measure quality loss and
//! privacy under the optimal Bayesian attack.
//!
//! ```text
//! cargo run --release -p vlp-bench --example taxi_simulation
//! ```

use adversary::bayes;
use vlp_bench::scenarios;

fn main() {
    let graph = scenarios::rome_graph();
    println!(
        "Rome-like map: {} segments, total length {:.1} km",
        graph.edge_count(),
        graph.total_length()
    );

    // A small fleet of network-constrained random-walk taxis.
    let traces = scenarios::fleet(&graph, 4, 400, 99);
    let epsilon = 5.0;
    let delta = 0.2;

    println!("\ncab  method   ETDD(km)  AdvError(km)");
    for (cab_id, cab) in traces.iter().enumerate().take(3) {
        let inst = scenarios::cab_instance(&graph, delta, cab, &traces);
        let (ours, _, diag) = scenarios::solve_ours(&inst, epsilon, scenarios::DEFAULT_XI);
        let m_ours = scenarios::evaluate(&inst, &ours);
        let twodb = scenarios::solve_2db(&inst, epsilon);
        let m_2db = scenarios::evaluate(&inst, &twodb);
        println!(
            "{cab_id:>3}  ours     {:>8.4}  {:>12.4}   ({} CG iters)",
            m_ours.etdd, m_ours.adv_error, diag.iterations
        );
        println!(
            "{cab_id:>3}  2Db      {:>8.4}  {:>12.4}",
            m_2db.etdd, m_2db.adv_error
        );

        // Peek at what the adversary concludes from one report.
        let post = bayes::posterior(&ours, &inst.f_p, inst.len() / 2);
        let map_estimate = post
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite posterior"))
            .map(|(i, _)| i)
            .expect("nonempty posterior");
        println!(
            "     adversary's MAP guess for report {}: interval {} (posterior {:.3})",
            inst.len() / 2,
            map_estimate,
            post[map_estimate]
        );
    }
    println!(
        "\nLower ETDD for `ours` reproduces Fig. 11's quality result; see \
         EXPERIMENTS.md on the AdvError comparison at matched nominal eps."
    );
}
