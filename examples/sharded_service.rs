//! Sharded serving in one sitting: partition a town into region
//! shards, serve a fleet's obfuscation requests under a solve
//! deadline, and feed the obfuscated reports into per-shard task
//! assignment.
//!
//! Run with `cargo run --release --example sharded_service`.

use std::time::Duration;

use platform::{MechanismService, Served, ServiceConfig, WorkerId};
use rand::SeedableRng;
use roadnet::{generators, EdgeId, Location};

fn main() {
    // A 3×4 arterial grid, split into two region shards.
    let graph = generators::grid(3, 4, 0.4, true);
    let n_edges = graph.edge_count();
    let mut svc = MechanismService::new(
        graph,
        ServiceConfig {
            n_shards: 2,
            delta: 0.2,
            // Never wait for a solve: cold keys are served from the
            // graph-Laplace fallback, warm keys from the cached
            // optimum. ε is identical either way.
            solve_deadline: Duration::ZERO,
            ..ServiceConfig::default()
        },
    );
    println!(
        "partitioned into {} shards ({} cross-boundary edges dropped)",
        svc.shard_count(),
        svc.partition().cross_edges().len()
    );

    // A four-vehicle fleet: one location per shard, two budgets.
    let mut locations = Vec::new();
    for e in 0..n_edges {
        let loc = Location::new(EdgeId(e), 0.1);
        if let Some((s, _)) = svc.partition().to_local(loc) {
            if locations.iter().all(|&(shard, _)| shard != s) {
                locations.push((s, loc));
            }
        }
    }
    let requests: Vec<(WorkerId, Location, f64)> = locations
        .iter()
        .enumerate()
        .flat_map(|(i, &(_, loc))| {
            [
                (WorkerId(2 * i), loc, 5.0),
                (WorkerId(2 * i + 1), loc, 10.0),
            ]
        })
        .collect();

    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    for round in ["cold", "warm"] {
        let served = svc.obfuscate_batch(&requests, &mut rng);
        let fallback = served
            .iter()
            .filter(|o| o.served == Served::Fallback)
            .count();
        println!(
            "{round} batch: {} requests → {fallback} fallback-served, {} mechanisms cached",
            served.len(),
            svc.cached_mechanisms()
        );
        for o in &served {
            println!(
                "  worker {:>2} → shard {} interval {:>2} at ε={} ({:?})",
                o.worker.0, o.shard, o.interval, o.epsilon, o.served
            );
        }
        // The obfuscated reports drive the same Hungarian snapshot
        // path the single-region server uses, per shard.
        for (s, _) in &locations {
            svc.publish_task(*s, 0);
        }
        for (s, outcome) in svc.snapshot_batch(&served) {
            println!(
                "  shard {s}: {} tasks assigned from obfuscated reports",
                outcome.assignments.len()
            );
        }
    }
}
